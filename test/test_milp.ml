(* Tests for the MILP substrate: model builder, simplex, branch-and-bound. *)

open Milp

let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

let status_pp = function
  | Bb.Optimal -> "optimal"
  | Bb.Feasible -> "feasible"
  | Bb.Infeasible -> "infeasible"
  | Bb.Unbounded -> "unbounded"
  | Bb.No_solution -> "no_solution"

let check_status what expect got =
  Alcotest.(check string) what (status_pp expect) (status_pp got)

(* --- Lp model builder --- *)

let test_lp_builder () =
  let m = Lp.create ~name:"t" () in
  let x = Lp.add_var m ~lb:1. ~ub:5. "x" in
  let y = Lp.add_var m ~integer:true "y" in
  Alcotest.(check int) "num_vars" 2 (Lp.num_vars m);
  Alcotest.(check string) "name" "x" (Lp.var_name m x);
  check_bool "integer flag" true (Lp.is_integer m y);
  check_bool "continuous flag" false (Lp.is_integer m x);
  Alcotest.(check (pair (float 0.) (float 0.))) "bounds" (1., 5.) (Lp.bounds m x);
  Lp.add_constr m [ (1., x); (2., x); (1., y) ] Lp.Le 10.;
  (* duplicate terms are merged *)
  let rows = Lp.constrs m in
  Alcotest.(check int) "one row" 1 (Array.length rows);
  let terms, _, _ = rows.(0) in
  Alcotest.(check int) "merged terms" 2 (Array.length terms);
  check_bool "dump mentions vars" true (String.length (Lp.to_string m) > 0)

let test_lp_bad_bounds () =
  let m = Lp.create () in
  Alcotest.check_raises "lb > ub"
    (Robust.Failure.Error (Robust.Failure.Invalid_input "Lp.add_var bad: lb > ub"))
    (fun () -> ignore (Lp.add_var m ~lb:2. ~ub:1. "bad"))

(* --- LP solving through the relaxation --- *)

let solve_lp m = Bb.solve ~node_limit:1000 ~time_limit:10. m

let test_lp_max () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6 -> (4, 0), obj 12 *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constr m [ (1., x); (3., y) ] Lp.Le 6.;
  Lp.set_objective m `Maximize [ (3., x); (2., y) ];
  let r = solve_lp m in
  check_status "status" Bb.Optimal r.Bb.status;
  check_float "obj" 12. r.Bb.obj;
  check_float "x" 4. (Bb.value r x);
  check_float "y" 0. (Bb.value r y)

let test_lp_equality_and_ge () =
  (* min 2u + v st u + v = 7, u - v >= 1 -> u=4, v=3, obj 11 *)
  let m = Lp.create () in
  let u = Lp.add_var m "u" and v = Lp.add_var m "v" in
  Lp.add_constr m [ (1., u); (1., v) ] Lp.Eq 7.;
  Lp.add_constr m [ (1., u); (-1., v) ] Lp.Ge 1.;
  Lp.set_objective m `Minimize [ (2., u); (1., v) ];
  let r = solve_lp m in
  check_float "obj" 11. r.Bb.obj;
  check_float "u" 4. (Bb.value r u)

let test_lp_infeasible () =
  let m = Lp.create () in
  let w = Lp.add_var m ~ub:1. "w" in
  Lp.add_constr m [ (1., w) ] Lp.Ge 2.;
  check_status "status" Bb.Infeasible (solve_lp m).Bb.status

let test_lp_unbounded () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.set_objective m `Maximize [ (1., x) ];
  check_status "status" Bb.Unbounded (solve_lp m).Bb.status

let test_lp_bounded_vars () =
  (* variable upper bounds must be honoured without explicit rows *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:2. ~ub:3. "x" and y = Lp.add_var m ~ub:10. "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 8.;
  Lp.set_objective m `Maximize [ (1., x); (1., y) ];
  let r = solve_lp m in
  check_float "obj" 8. r.Bb.obj;
  check_bool "x within bounds" true (Bb.value r x <= 3. +. 1e-9 && Bb.value r x >= 2. -. 1e-9)

let test_lp_negative_lb () =
  (* min x st x >= -5 with objective x -> -5 *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:(-5.) ~ub:5. "x" in
  Lp.set_objective m `Minimize [ (1., x) ];
  let r = solve_lp m in
  check_float "obj" (-5.) r.Bb.obj

let test_lp_objective_constant () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. "x" in
  Lp.set_objective m `Maximize ~constant:10. [ (1., x) ];
  check_float "obj with constant" 11. (solve_lp m).Bb.obj

let test_lp_no_constraints () =
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:1. ~ub:4. "x" in
  Lp.set_objective m `Maximize [ (2., x) ];
  check_float "obj" 8. (solve_lp m).Bb.obj

(* --- MILP --- *)

let test_milp_knapsack () =
  (* max 5a + 4b + 3c st 2a + 3b + c <= 5, binaries -> a=b=1 (obj 9) *)
  let m = Lp.create () in
  let a = Lp.add_var m ~integer:true ~ub:1. "a" in
  let b = Lp.add_var m ~integer:true ~ub:1. "b" in
  let c = Lp.add_var m ~integer:true ~ub:1. "c" in
  Lp.add_constr m [ (2., a); (3., b); (1., c) ] Lp.Le 5.;
  Lp.set_objective m `Maximize [ (5., a); (4., b); (3., c) ];
  let r = solve_lp m in
  check_float "obj" 9. r.Bb.obj;
  check_float "a" 1. (Bb.value r a);
  check_float "c" 0. (Bb.value r c)

let test_milp_integrality () =
  (* LP optimum fractional; MILP must round down: max x st 2x <= 5, x int *)
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true "x" in
  Lp.add_constr m [ (2., x) ] Lp.Le 5.;
  Lp.set_objective m `Maximize [ (1., x) ];
  check_float "x = 2" 2. (solve_lp m).Bb.obj

let test_milp_equality_int () =
  (* x + y = 7, x,y int in [0,4]: max 3x + y -> x=4,y=3 obj 15 *)
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~ub:4. "x" in
  let y = Lp.add_var m ~integer:true ~ub:4. "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Eq 7.;
  Lp.set_objective m `Maximize [ (3., x); (1., y) ];
  check_float "obj" 15. (solve_lp m).Bb.obj

let test_milp_warm_start () =
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~ub:3. "x" in
  Lp.add_constr m [ (1., x) ] Lp.Le 3.;
  Lp.set_objective m `Maximize [ (1., x) ];
  (* feasible warm start is accepted *)
  check_bool "feasible ws" true (Bb.check_feasible m [| 2. |]);
  check_bool "infeasible ws" false (Bb.check_feasible m [| 9. |]);
  let r = Bb.solve ~warm_start:[| 2. |] ~node_limit:0 ~time_limit:10. m in
  (* with zero nodes, the warm start is the answer *)
  check_float "warm obj" 2. r.Bb.obj;
  let r2 = Bb.solve ~warm_start:[| 2. |] m in
  check_float "improves beyond warm" 3. r2.Bb.obj

let test_milp_gap () =
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~ub:10. "x" in
  Lp.set_objective m `Maximize [ (1., x) ];
  Lp.add_constr m [ (1., x) ] Lp.Le 10.;
  let r = Bb.solve ~gap:100. ~warm_start:[| 5. |] m in
  (* huge gap: the warm incumbent is already within tolerance *)
  check_bool "within gap" true (r.Bb.obj >= 5. -. 1e-9)

let test_bb_warm_lp_identity () =
  (* LP warm starting must only change how fast node LPs solve, never the
     search: solutions, objective, and node counts must match exactly with
     warm_lp on and off (this is the tree-identity invariant the bench
     sweep gates end-to-end on ResNet-50) *)
  let build () =
    let m = Lp.create () in
    let vars =
      List.init 6 (fun i -> Lp.add_var m ~integer:true ~ub:4. (Printf.sprintf "x%d" i))
    in
    List.iteri
      (fun r weights ->
        Lp.add_constr m
          (List.map2 (fun w v -> (float_of_int w, v)) weights vars)
          Lp.Le (11 + (3 * r) |> float_of_int))
      [ [ 3; 5; 2; 1; 4; 2 ]; [ 2; 1; 4; 5; 1; 3 ]; [ 4; 2; 1; 3; 5; 1 ] ];
    Lp.set_objective m `Maximize
      (List.map2 (fun c v -> (float_of_int c, v)) [ 7; 9; 4; 6; 8; 5 ] vars);
    m
  in
  let on = Bb.solve ~warm_lp:true (build ()) in
  let off = Bb.solve ~warm_lp:false (build ()) in
  check_bool "status" true (on.Bb.status = off.Bb.status);
  check_bool "objective identical" true (on.Bb.obj = off.Bb.obj);
  check_bool "values identical" true (on.Bb.values = off.Bb.values);
  Alcotest.(check int) "node counts identical" off.Bb.nodes on.Bb.nodes

let test_milp_priority_runs () =
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~ub:3. "x" in
  let y = Lp.add_var m ~integer:true ~ub:3. "y" in
  Lp.add_constr m [ (2., x); (2., y) ] Lp.Le 7.;
  Lp.set_objective m `Maximize [ (1., x); (1., y) ];
  let r = Bb.solve ~priority:[| 5.; 1. |] m in
  check_float "obj" 3. r.Bb.obj

let test_relax_shape () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constr m [ (1., x) ] Lp.Le 1.;
  Lp.add_constr m [ (1., y) ] Lp.Ge 0.;
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Eq 1.;
  let p = Bb.relax m in
  Alcotest.(check int) "rows" 3 p.Simplex.nrows;
  (* two slacks for the two inequalities *)
  Alcotest.(check int) "cols" 4 p.Simplex.ncols

let test_simplex_feasible_checker () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. "x" in
  Lp.add_constr m [ (1., x) ] Lp.Le 1.5;
  let p = Bb.relax m in
  (* x = 1, slack = 0.5 satisfies the equality-form row *)
  check_bool "feasible point" true (Simplex.feasible p [| 1.0; 0.5 |]);
  check_bool "violated row" false (Simplex.feasible p [| 1.0; 2.0 |])

(* --- Property tests: random MILPs vs exhaustive enumeration --- *)

let random_milp_gen =
  let open QCheck.Gen in
  let small_int = int_range (-5) 5 in
  int_range 1 3 >>= fun nvars ->
  int_range 1 3 >>= fun nrows ->
  list_size (return nvars) small_int >>= fun obj ->
  list_size (return nrows) (pair (list_size (return nvars) small_int) (int_range 0 12))
  >>= fun rows -> return (nvars, obj, rows)

let brute_force nvars obj rows =
  (* integer box [0,4]^n *)
  let best = ref neg_infinity in
  let rec go assign = function
    | 0 ->
      let a = Array.of_list (List.rev assign) in
      let feasible =
        List.for_all
          (fun (coeffs, rhs) ->
            let lhs = List.fold_left ( + ) 0 (List.mapi (fun i c -> c * a.(i)) coeffs) in
            lhs <= rhs)
          rows
      in
      if feasible then begin
        let v = List.fold_left ( + ) 0 (List.mapi (fun i c -> c * a.(i)) obj) in
        if float_of_int v > !best then best := float_of_int v
      end
    | k ->
      for v = 0 to 4 do
        go (v :: assign) (k - 1)
      done
  in
  go [] nvars;
  !best

let prop_milp_matches_bruteforce =
  QCheck.Test.make ~name:"B&B matches brute force on tiny MILPs" ~count:60
    (QCheck.make random_milp_gen)
    (fun (nvars, obj, rows) ->
      let m = Lp.create () in
      let vars =
        List.init nvars (fun i -> Lp.add_var m ~integer:true ~ub:4. (Printf.sprintf "v%d" i))
      in
      List.iter
        (fun (coeffs, rhs) ->
          Lp.add_constr m
            (List.map2 (fun c v -> (float_of_int c, v)) coeffs vars)
            Lp.Le (float_of_int rhs))
        rows;
      Lp.set_objective m `Maximize (List.map2 (fun c v -> (float_of_int c, v)) obj vars);
      let expect = brute_force nvars obj rows in
      let r = Bb.solve ~node_limit:20_000 ~time_limit:10. m in
      match r.Bb.status with
      | Bb.Optimal -> Float.abs (r.Bb.obj -. expect) < 1e-6
      | Bb.Infeasible -> expect = neg_infinity
      | Bb.Feasible | Bb.Unbounded | Bb.No_solution -> false)

let prop_lp_solution_feasible =
  QCheck.Test.make ~name:"simplex solutions satisfy their problems" ~count:60
    (QCheck.make random_milp_gen)
    (fun (nvars, obj, rows) ->
      let m = Lp.create () in
      let vars =
        List.init nvars (fun i -> Lp.add_var m ~ub:4. (Printf.sprintf "v%d" i))
      in
      List.iter
        (fun (coeffs, rhs) ->
          Lp.add_constr m
            (List.map2 (fun c v -> (float_of_int c, v)) coeffs vars)
            Lp.Le (float_of_int rhs))
        rows;
      Lp.set_objective m `Maximize (List.map2 (fun c v -> (float_of_int c, v)) obj vars);
      let p = Bb.relax m in
      let r = Simplex.solve p in
      match r.Simplex.status with
      | Simplex.Optimal -> Simplex.feasible p r.Simplex.x
      | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> true)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "milp",
    [
      Alcotest.test_case "lp builder" `Quick test_lp_builder;
      Alcotest.test_case "lp bad bounds" `Quick test_lp_bad_bounds;
      Alcotest.test_case "lp max" `Quick test_lp_max;
      Alcotest.test_case "lp eq + ge" `Quick test_lp_equality_and_ge;
      Alcotest.test_case "lp infeasible" `Quick test_lp_infeasible;
      Alcotest.test_case "lp unbounded" `Quick test_lp_unbounded;
      Alcotest.test_case "lp bounded vars" `Quick test_lp_bounded_vars;
      Alcotest.test_case "lp negative lb" `Quick test_lp_negative_lb;
      Alcotest.test_case "lp objective constant" `Quick test_lp_objective_constant;
      Alcotest.test_case "lp no constraints" `Quick test_lp_no_constraints;
      Alcotest.test_case "milp knapsack" `Quick test_milp_knapsack;
      Alcotest.test_case "milp integrality" `Quick test_milp_integrality;
      Alcotest.test_case "milp equality" `Quick test_milp_equality_int;
      Alcotest.test_case "milp warm start" `Quick test_milp_warm_start;
      Alcotest.test_case "milp gap" `Quick test_milp_gap;
      Alcotest.test_case "milp priority" `Quick test_milp_priority_runs;
      Alcotest.test_case "bb warm-lp identity" `Quick test_bb_warm_lp_identity;
      Alcotest.test_case "relax shape" `Quick test_relax_shape;
      Alcotest.test_case "feasibility checker" `Quick test_simplex_feasible_checker;
      qc prop_milp_matches_bruteforce;
      qc prop_lp_solution_feasible;
    ] )
