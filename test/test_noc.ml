(* Tests for the NoC substrate: wormhole mesh, DRAM model, and the
   transaction-level simulation driver. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let noc_spec = Spec.baseline.Spec.noc

let run_until_idle ?(cap = 100_000) mesh =
  let deliveries = ref [] in
  let n = ref 0 in
  while (not (Mesh.idle mesh)) && !n < cap do
    incr n;
    Mesh.step mesh;
    deliveries := Mesh.delivered mesh @ !deliveries
  done;
  check_bool "drained before cap" true (Mesh.idle mesh);
  !deliveries

let test_unicast_delivery () =
  let mesh = Mesh.create noc_spec in
  (* GB (router 0) to node 15 = (3,3): 6 hops + injection/ejection *)
  let pkt = Packet.make ~id:1 ~src:(-1) ~dests:[ 15 ] ~flits:4 ~tensor:Dims.W ~step:0 in
  Mesh.inject mesh Mesh.Gb pkt;
  let delivered = run_until_idle mesh in
  check_int "one delivery" 1 (List.length delivered);
  (match delivered with
   | [ (Mesh.Node 15, p) ] -> check_int "right packet" 1 p.Packet.id
   | _ -> Alcotest.fail "expected delivery at node 15");
  (* 4 flits, ~8 hops each: latency bounded but nontrivial *)
  check_bool "took multiple cycles" true (Mesh.cycles mesh >= 8)

let test_multicast_delivery () =
  let mesh = Mesh.create noc_spec in
  let dests = [ 0; 3; 12; 15 ] in
  let pkt = Packet.make ~id:7 ~src:(-1) ~dests ~flits:3 ~tensor:Dims.IA ~step:0 in
  Mesh.inject mesh Mesh.Gb pkt;
  let delivered = run_until_idle mesh in
  check_int "all four corners" 4 (List.length delivered);
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "node %d reached" d)
        true
        (List.exists (function Mesh.Node n, _ -> n = d | _ -> false) delivered))
    dests

let test_multicast_saves_hops () =
  let dests = [ 12; 13; 14; 15 ] in
  let send spec =
    let mesh = Mesh.create spec in
    Mesh.inject mesh Mesh.Gb
      (Packet.make ~id:1 ~src:(-1) ~dests ~flits:8 ~tensor:Dims.W ~step:0);
    ignore (run_until_idle mesh);
    Mesh.flit_hops mesh
  in
  let with_mc = send noc_spec in
  let without_mc = send { noc_spec with Spec.multicast = false } in
  check_bool "multicast uses fewer link traversals" true (with_mc < without_mc)

let test_node_to_gb () =
  let mesh = Mesh.create noc_spec in
  let pkt = Packet.make ~id:3 ~src:9 ~dests:[ -1 ] ~flits:2 ~tensor:Dims.OA ~step:0 in
  Mesh.inject mesh (Mesh.Node 9) pkt;
  let delivered = run_until_idle mesh in
  check_bool "arrived at GB" true
    (List.exists (function Mesh.Gb, p -> p.Packet.id = 3 | _ -> false) delivered)

let test_many_packets_all_arrive () =
  let mesh = Mesh.create noc_spec in
  let n = 16 * 8 in
  for i = 0 to n - 1 do
    Mesh.inject mesh Mesh.Gb
      (Packet.make ~id:i ~src:(-1) ~dests:[ i mod 16 ] ~flits:5 ~tensor:Dims.W ~step:0)
  done;
  let delivered = run_until_idle ~cap:1_000_000 mesh in
  check_int "every packet delivered" n (List.length delivered)

let test_cross_traffic () =
  (* simultaneous GB->PE and PE->GB traffic must not deadlock *)
  let mesh = Mesh.create noc_spec in
  for i = 0 to 15 do
    Mesh.inject mesh Mesh.Gb
      (Packet.make ~id:i ~src:(-1) ~dests:[ i ] ~flits:6 ~tensor:Dims.IA ~step:0);
    Mesh.inject mesh (Mesh.Node i)
      (Packet.make ~id:(100 + i) ~src:i ~dests:[ -1 ] ~flits:6 ~tensor:Dims.OA ~step:0)
  done;
  let delivered = run_until_idle ~cap:1_000_000 mesh in
  check_int "32 deliveries" 32 (List.length delivered)

let test_packet_invalid_args () =
  (* malformed packets surface as typed robustness failures, not escaping
     Invalid_argument *)
  Alcotest.check_raises "empty dests"
    (Robust.Failure.Error (Robust.Failure.Invalid_input "Packet.make: empty destination list"))
    (fun () -> ignore (Packet.make ~id:0 ~src:0 ~dests:[] ~flits:1 ~tensor:Dims.W ~step:0));
  Alcotest.check_raises "zero flits"
    (Robust.Failure.Error (Robust.Failure.Invalid_input "Packet.make: flits < 1")) (fun () ->
      ignore (Packet.make ~id:0 ~src:0 ~dests:[ 1 ] ~flits:0 ~tensor:Dims.W ~step:0))

(* --- DRAM model --- *)

let dram_spec = Spec.baseline.Spec.dram

let run_dram_until dram id =
  let cycles = ref 0 in
  while (not (List.mem id (Dram_model.completed dram))) && !cycles < 100_000 do
    incr cycles;
    Dram_model.step dram
  done;
  !cycles

let test_dram_row_hit_faster () =
  let d1 = Dram_model.create dram_spec in
  let a = Dram_model.request d1 ~bytes:256 ~row:5 in
  let t_first = run_dram_until d1 a in
  let b = Dram_model.request d1 ~bytes:256 ~row:5 in
  let t_hit = run_dram_until d1 b in
  let d2 = Dram_model.create dram_spec in
  let c = Dram_model.request d2 ~bytes:256 ~row:5 in
  ignore (run_dram_until d2 c);
  (* same bank (row mod banks), different row: forced precharge + activate *)
  let e = Dram_model.request d2 ~bytes:256 ~row:(5 + dram_spec.Spec.banks) in
  let t_miss = run_dram_until d2 e in
  check_bool "row hit faster than row miss" true (t_hit < t_miss);
  check_bool "first access pays a miss" true (t_first > t_hit)

let test_dram_fcfs () =
  let d = Dram_model.create dram_spec in
  let a = Dram_model.request d ~bytes:64 ~row:1 in
  let b = Dram_model.request d ~bytes:64 ~row:2 in
  let done_order = ref [] in
  for _ = 1 to 10_000 do
    Dram_model.step d;
    done_order := !done_order @ Dram_model.completed d
  done;
  Alcotest.(check (list int)) "in order" [ a; b ] !done_order;
  check_bool "idle after" false (Dram_model.busy d)

let test_dram_busy_accounting () =
  let d = Dram_model.create dram_spec in
  ignore (Dram_model.request d ~bytes:128 ~row:0);
  check_bool "busy with queued work" true (Dram_model.busy d);
  for _ = 1 to 10_000 do
    Dram_model.step d
  done;
  check_bool "busy cycles recorded" true (Dram_model.total_busy_cycles d > 0)

(* --- Simulation driver --- *)

let test_sim_small_exact () =
  let layer = Layer.create ~name:"sim_t" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 () in
  let rng = Prim.Rng.create 21 in
  match Sampler.valid rng Spec.baseline layer with
  | None -> Alcotest.fail "sampler failed"
  | Some m ->
    let s = Noc_sim.simulate Spec.baseline m in
    check_bool "not sampled (small)" false s.Noc_sim.sampled;
    check_bool "latency positive" true (s.Noc_sim.latency > 0.);
    check_bool "latency >= compute floor" true
      (s.Noc_sim.latency
       >= float_of_int (s.Noc_sim.compute_cycles_per_step * s.Noc_sim.total_steps) -. 1e-6);
    check_bool "packets flowed" true (s.Noc_sim.packets > 0)

let test_sim_deterministic () =
  let layer = Zoo.find "g3_56_4_4_1" in
  let m = (Cosa.schedule ~time_limit:2. Spec.baseline layer).Cosa.mapping in
  let a = Noc_sim.simulate Spec.baseline m in
  let b = Noc_sim.simulate Spec.baseline m in
  Alcotest.(check (float 0.)) "same latency" a.Noc_sim.latency b.Noc_sim.latency;
  check_int "same hops" a.Noc_sim.flit_hops b.Noc_sim.flit_hops

let test_sim_sampling_extrapolates () =
  let layer = Zoo.find "3_14_256_256_1" in
  let m = Cosa.trivial_mapping Spec.baseline layer in
  (* the all-DRAM schedule has a huge step count: sampling must kick in *)
  let s = Noc_sim.simulate ~max_steps:8 Spec.baseline m in
  check_bool "sampled" true s.Noc_sim.sampled;
  check_bool "extrapolated beyond simulated" true
    (s.Noc_sim.latency > float_of_int s.Noc_sim.simulated_cycles)

let test_sim_slower_than_model () =
  (* the cycle-level simulator sees congestion that the perfect-overlap
     analytical model hides *)
  let layer = Zoo.find "g3_28_8_8_1" in
  let m = (Cosa.schedule ~time_limit:2. Spec.baseline layer).Cosa.mapping in
  let sim = (Noc_sim.simulate Spec.baseline m).Noc_sim.latency in
  let model = (Model.evaluate Spec.baseline m).Model.latency in
  check_bool "sim >= 0.8x model" true (sim >= 0.8 *. model)

let test_dram_frfcfs_prefers_hits () =
  (* a row-hit request that arrives later is served before an older miss *)
  let d = Dram_model.create dram_spec in
  let warm = Dram_model.request d ~bytes:64 ~row:3 in
  ignore (run_dram_until d warm);
  let miss = Dram_model.request d ~bytes:64 ~row:(3 + dram_spec.Spec.banks) in
  let hit = Dram_model.request d ~bytes:64 ~row:3 in
  let order = ref [] in
  for _ = 1 to 10_000 do
    Dram_model.step d;
    order := !order @ Dram_model.completed d
  done;
  Alcotest.(check (list int)) "hit first" [ hit; miss ] !order;
  check_bool "hit counted" true (Dram_model.row_hit_count d >= 1);
  check_bool "miss counted" true (Dram_model.row_miss_count d >= 2)

let test_dram_bank_parallel_overlap () =
  (* two misses in different banks overlap their activations, so together
     they finish sooner than twice a serial miss *)
  let serial =
    let d = Dram_model.create dram_spec in
    let a = Dram_model.request d ~bytes:64 ~row:0 in
    let t1 = run_dram_until d a in
    let b = Dram_model.request d ~bytes:64 ~row:dram_spec.Spec.banks in
    t1 + run_dram_until d b
  in
  let parallel =
    let d = Dram_model.create dram_spec in
    let _ = Dram_model.request d ~bytes:64 ~row:0 in
    let b = Dram_model.request d ~bytes:64 ~row:1 in
    run_dram_until d b
  in
  check_bool "bank overlap helps" true (parallel < serial)

let test_sim_cycle_budget_typed () =
  (* regression: exhausting the cycle budget used to [failwith]; it must now
     surface as a typed [Iteration_limit] from [simulate_r] and as
     [Robust.Failure.Error] from the legacy wrapper *)
  let layer = Zoo.find "3_14_256_256_1" in
  let m = Cosa.trivial_mapping Spec.baseline layer in
  (match Noc_sim.simulate_r ~max_steps:8 ~max_cycles:100 Spec.baseline m with
   | Error Robust.Failure.Iteration_limit -> ()
   | Error f -> Alcotest.fail ("unexpected failure: " ^ Robust.Failure.to_string f)
   | Ok _ -> Alcotest.fail "expected the cycle budget to be exhausted");
  Alcotest.check_raises "legacy wrapper raises typed error"
    (Robust.Failure.Error Robust.Failure.Iteration_limit)
    (fun () -> ignore (Noc_sim.simulate ~max_steps:8 ~max_cycles:100 Spec.baseline m))

let suite =
  ( "noc",
    [
      Alcotest.test_case "unicast delivery" `Quick test_unicast_delivery;
      Alcotest.test_case "multicast delivery" `Quick test_multicast_delivery;
      Alcotest.test_case "multicast saves hops" `Quick test_multicast_saves_hops;
      Alcotest.test_case "node to GB" `Quick test_node_to_gb;
      Alcotest.test_case "many packets" `Quick test_many_packets_all_arrive;
      Alcotest.test_case "cross traffic" `Quick test_cross_traffic;
      Alcotest.test_case "packet validation" `Quick test_packet_invalid_args;
      Alcotest.test_case "dram row hit/miss" `Quick test_dram_row_hit_faster;
      Alcotest.test_case "dram fcfs" `Quick test_dram_fcfs;
      Alcotest.test_case "dram busy" `Quick test_dram_busy_accounting;
      Alcotest.test_case "dram FR-FCFS" `Quick test_dram_frfcfs_prefers_hits;
      Alcotest.test_case "dram bank overlap" `Quick test_dram_bank_parallel_overlap;
      Alcotest.test_case "sim small exact" `Quick test_sim_small_exact;
      Alcotest.test_case "sim deterministic" `Slow test_sim_deterministic;
      Alcotest.test_case "sim sampling" `Quick test_sim_sampling_extrapolates;
      Alcotest.test_case "sim cycle budget typed" `Quick test_sim_cycle_budget_typed;
      Alcotest.test_case "sim vs model" `Slow test_sim_slower_than_model;
    ] )

