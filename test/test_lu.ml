(* The incremental LU engine (lib/milp/lu.ml): eta-updated factorizations
   must agree with from-scratch refactorization, and the stability trigger
   must fire on engineered trouble. *)

module Lu = Milp.Lu

let pivot_tol = 1e-9

(* Build sparse columns (row indices ascending) from a dense matrix given
   column-major: cols.(j) is the dense column j. *)
let sparse_of_dense dense =
  Array.map
    (fun col ->
      let entries = ref [] in
      Array.iteri (fun i v -> if v <> 0. then entries := (i, v) :: !entries) col;
      let entries = List.rev !entries in
      ( Array.of_list (List.map fst entries),
        Array.of_list (List.map snd entries) ))
    dense

(* A random pool of well-conditioned columns: diagonally dominant ones
   (index j has a strong entry in row [j mod m]) plus random fill, so both
   the initial basis and most pivot candidates stay far from singular. *)
let random_pool_gen =
  let open QCheck.Gen in
  int_range 3 8 >>= fun m ->
  int_range (m + 2) (3 * m) >>= fun ncols ->
  let col j =
    array_size (return m) (float_range (-1.) 1.) >>= fun fill ->
    float_range 2. 4. >>= fun diag ->
    return
      (Array.init m (fun i ->
           if i = j mod m then diag else fill.(i) *. 0.4))
  in
  let rec cols j acc =
    if j >= ncols then return (Array.of_list (List.rev acc))
    else col j >>= fun c -> cols (j + 1) (c :: acc)
  in
  cols 0 [] >>= fun dense ->
  list_size (int_range 1 20) (int_range 0 (ncols - 1)) >>= fun pivots ->
  return (m, dense, pivots)

(* Drive the engine through a random pivot sequence: start from the basis
   [0..m-1], refactor, then for each candidate column ftran it, pick the
   largest-magnitude pivot row among usable ones, and eta-update. Returns
   the final basis (or None if no pivot was usable). *)
let run_pivots lu scratch cols basis pivots =
  Lu.refactor lu ~scratch ~cols ~basis ~pivot_tol;
  let m = Lu.dim lu in
  let alpha = Array.make m 0. in
  List.iter
    (fun j ->
      if not (Array.exists (( = ) j) basis) then begin
        Lu.ftran lu cols.(j) alpha;
        let r = ref (-1) in
        for i = 0 to m - 1 do
          if Float.abs alpha.(i) > 0.1
             && (!r < 0 || Float.abs alpha.(i) > Float.abs alpha.(!r))
          then r := i
        done;
        if !r >= 0 then begin
          Lu.update lu ~pivot_tol !r alpha;
          basis.(!r) <- j
        end
      end)
    pivots

let prop_eta_matches_scratch =
  QCheck.Test.make ~name:"eta-updated inverse agrees with refactorization"
    ~count:300 (QCheck.make random_pool_gen)
    (fun (m, dense, pivots) ->
      let cols = sparse_of_dense dense in
      let basis = Array.init m Fun.id in
      let scratch = Array.make_matrix m m 0. in
      let eta = Lu.create m in
      run_pivots eta scratch cols basis pivots;
      (* a second engine factorizes the final basis from scratch *)
      let fresh = Lu.create m in
      Lu.refactor fresh ~scratch ~cols ~basis ~pivot_tol;
      let a1 = Array.make m 0. and a2 = Array.make m 0. in
      let y1 = Array.make m 0. and y2 = Array.make m 0. in
      let tol = 1e-6 in
      let close a b =
        Float.abs (a -. b) <= tol *. (1. +. Float.max (Float.abs a) (Float.abs b))
      in
      (* FTRAN of every pool column must agree *)
      Array.iter
        (fun col ->
          Lu.ftran eta col a1;
          Lu.ftran fresh col a2;
          for i = 0 to m - 1 do
            if not (close a1.(i) a2.(i)) then
              QCheck.Test.fail_reportf "ftran drift: %g vs %g" a1.(i) a2.(i)
          done)
        cols;
      (* BTRAN of a deterministic cost vector must agree *)
      let c = Array.init m (fun i -> if i mod 2 = 0 then 1. +. float_of_int i else 0.) in
      Lu.btran eta c y1;
      Lu.btran fresh c y2;
      for i = 0 to m - 1 do
        if not (close y1.(i) y2.(i)) then
          QCheck.Test.fail_reportf "btran drift: %g vs %g" y1.(i) y2.(i)
      done;
      (* and apply (dense FTRAN) on the all-ones vector *)
      let ones = Array.make m 1. in
      Lu.apply eta ones a1;
      Lu.apply fresh ones a2;
      for i = 0 to m - 1 do
        if not (close a1.(i) a2.(i)) then
          QCheck.Test.fail_reportf "apply drift: %g vs %g" a1.(i) a2.(i)
      done;
      true)

(* The stability trigger: absorbing a tiny pivot must demand an immediate
   refactorization even though the chain is short. *)
let test_stability_trigger () =
  let m = 3 in
  let lu = Lu.create m in
  let cols =
    sparse_of_dense (Array.init m (fun j -> Array.init m (fun i -> if i = j then 1. else 0.)))
  in
  let basis = Array.init m Fun.id in
  let scratch = Array.make_matrix m m 0. in
  Lu.refactor lu ~scratch ~cols ~basis ~pivot_tol;
  Alcotest.(check bool) "fresh factorization needs no refactor" false
    (Lu.trigger lu <> Lu.No_refactor);
  (* a benign pivot keeps the chain healthy *)
  Lu.update lu ~pivot_tol 0 [| 2.; 0.1; 0. |];
  Alcotest.(check bool) "healthy chain needs no refactor" false
    (Lu.trigger lu <> Lu.No_refactor);
  (* an ill-conditioned pivot (|alpha_r| = 1e-9 < 1e-7 floor) fires it *)
  Lu.update lu ~pivot_tol 1 [| 0.3; 1e-9; 0.2 |];
  (match Lu.trigger lu with
   | Lu.Stability -> ()
   | Lu.Chain -> Alcotest.fail "expected Stability trigger, got Chain"
   | Lu.No_refactor -> Alcotest.fail "stability trigger did not fire");
  Alcotest.(check int) "chain length counts both updates" 2 (Lu.chain_length lu);
  (* refactorizing clears the trigger *)
  Lu.refactor lu ~scratch ~cols ~basis ~pivot_tol;
  Alcotest.(check bool) "refactor resets the trigger" true
    (Lu.trigger lu = Lu.No_refactor)

(* The chain-length cap fires after eta_chain_cap benign updates, and a
   pinned interval replaces it. *)
let test_chain_and_interval () =
  let m = 2 in
  let lu = Lu.create m in
  let cols = sparse_of_dense [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let basis = [| 0; 1 |] in
  let scratch = Array.make_matrix m m 0. in
  Lu.refactor lu ~scratch ~cols ~basis ~pivot_tol;
  for _ = 1 to Lu.eta_chain_cap - 1 do
    Lu.update lu ~pivot_tol 0 [| 1.; 0. |]
  done;
  Alcotest.(check bool) "below the cap: no refactor" true
    (Lu.trigger lu = Lu.No_refactor);
  (* a pinned interval fires much earlier on the same chain *)
  Alcotest.(check bool) "pinned interval fires below the cap" true
    (Lu.trigger ~interval:5 lu = Lu.Chain);
  Lu.update lu ~pivot_tol 0 [| 1.; 0. |];
  (match Lu.trigger lu with
   | Lu.Chain -> ()
   | _ -> Alcotest.fail "chain cap did not fire at eta_chain_cap");
  Alcotest.(check (float 0.)) "benign pivots leave min_pivot at 1" 1.
    (Lu.min_pivot lu)

(* End-to-end: a warm child solve fed the parent's canonical factor must
   return bit-identical results to the same solve without it, and must not
   refactorize at all when the parent optimum survives the bound change. *)
let test_factor_handoff () =
  let p =
    { Milp.Simplex.nrows = 2; ncols = 2;
      cols = [| ([| 0 |], [| 1. |]); ([| 1 |], [| 1. |]) |];
      cost = [| 1.; 1. |]; lb = [| 0.; 0. |]; ub = [| 10.; 10. |];
      rhs = [| 4.; 3. |] }
  in
  let parent =
    match Milp.Simplex.solve_r p with Ok r -> r | Error _ -> Alcotest.fail "parent"
  in
  let wb = Option.get parent.Milp.Simplex.basis in
  let wf = parent.Milp.Simplex.factor in
  Alcotest.(check bool) "optimal solve returns a factor" true (wf <> None);
  (* tighten a bound that does not cut the parent optimum *)
  let child = { p with ub = [| 9.; 10. |] } in
  let with_factor =
    match Milp.Simplex.solve_r ~warm:wb ?warm_factor:wf child with
    | Ok r -> r
    | Error _ -> Alcotest.fail "warm+factor"
  in
  let without_factor =
    match Milp.Simplex.solve_r ~warm:wb child with
    | Ok r -> r
    | Error _ -> Alcotest.fail "warm"
  in
  Alcotest.(check bool) "factor handoff is bit-transparent" true
    (with_factor.Milp.Simplex.x = without_factor.Milp.Simplex.x
    && with_factor.Milp.Simplex.obj = without_factor.Milp.Simplex.obj);
  (* counter check: the factor-fed solve performs zero refactorizations *)
  Telemetry.Sink.set Telemetry.Sink.Memory;
  Fun.protect ~finally:(fun () -> Telemetry.Sink.set Telemetry.Sink.Null)
  @@ fun () ->
  Telemetry.Metrics.reset ();
  (match Milp.Simplex.solve_r ~warm:wb ?warm_factor:wf child with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "warm+factor re-solve");
  let snap = Telemetry.Metrics.snapshot () in
  let count name = Telemetry.Metrics.counter_value snap name in
  Alcotest.(check int) "no refactorizations with a factor in hand" 0
    (count "simplex.refactorizations");
  Alcotest.(check bool) "the entry factor was reused" true
    (count "simplex.factor_reuses" >= 1)

(* A pinned --refactor-interval may change wall time only: results stay
   bit-identical to the stability-triggered default. *)
let test_refactor_interval_identity () =
  let p =
    { Milp.Simplex.nrows = 3; ncols = 4;
      cols =
        [| ([| 0; 1 |], [| 1.; 2. |]); ([| 0; 2 |], [| 3.; 1. |]);
           ([| 1; 2 |], [| 1.; 1. |]); ([| 0; 1 |], [| 1.; 1. |]) |];
      cost = [| -1.; -2.; -1.; -3. |];
      lb = [| 0.; 0.; 0.; 0. |]; ub = [| 5.; 5.; 5.; 5. |];
      rhs = [| 6.; 5.; 4. |] }
  in
  let a =
    match Milp.Simplex.solve_r p with Ok r -> r | Error _ -> Alcotest.fail "default"
  in
  let b =
    match Milp.Simplex.solve_r ~refactor_interval:1 p with
    | Ok r -> r
    | Error _ -> Alcotest.fail "interval"
  in
  Alcotest.(check bool) "refactor-interval=1 is bit-identical" true
    (a.Milp.Simplex.x = b.Milp.Simplex.x && a.Milp.Simplex.obj = b.Milp.Simplex.obj)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "lu",
    [ qc prop_eta_matches_scratch;
      Alcotest.test_case "stability trigger fires on tiny pivot" `Quick
        test_stability_trigger;
      Alcotest.test_case "chain cap and pinned interval" `Quick
        test_chain_and_interval;
      Alcotest.test_case "factor handoff: bit-transparent, no refactors" `Quick
        test_factor_handoff;
      Alcotest.test_case "refactor-interval pin is bit-transparent" `Quick
        test_refactor_interval_identity ] )
