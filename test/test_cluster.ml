(* Tests for the fault-tolerant cluster tier: content-addressed shard
   placement, per-shard crash-safe persistence and independent recovery,
   the configurable stale-temp sweep, solve determinism through the
   thread-safe sharded tier, and the health-checked warm-peer tier with
   its verify-before-serve discipline. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

module P = Daemon.Protocol

let arch = Spec.baseline
let weights = Cosa.calibrate arch

(* Small distinct layers: fingerprints differ, solves are fast. *)
let layers =
  List.map
    (fun (name, p, q, c, k) ->
      Layer.create ~name ~r:1 ~s:1 ~p ~q ~c ~k ~n:1 ())
    [ ("cl_a", 4, 4, 8, 8); ("cl_b", 4, 4, 4, 8); ("cl_c", 8, 8, 4, 4);
      ("cl_d", 8, 4, 8, 4); ("cl_e", 4, 8, 8, 4); ("cl_f", 8, 8, 8, 8);
      ("cl_g", 4, 4, 8, 4); ("cl_h", 8, 4, 4, 8) ]

let fp layer =
  Serve.Fingerprint.make ~weights ~strategy:Cosa.Two_stage ~certify:Cosa.Warn
    arch layer

let entry_of layer =
  { Serve.Schedule_cache.meta = Mapping_io.default_meta;
    mapping = Cosa.trivial_mapping arch layer }

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
  at 0

(* ---- shard placement and aggregate stats ------------------------------ *)

let test_shard_placement () =
  let c1 = Cluster.Sharded_cache.create ~capacity:64 ~shards:4 () in
  let c2 = Cluster.Sharded_cache.create ~capacity:64 ~shards:4 () in
  check_int "shard count" 4 (Cluster.Sharded_cache.shard_count c1);
  let idxs = List.map (fun l -> Cluster.Sharded_cache.shard_index c1 (fp l)) layers in
  (* content-addressed: every instance (every host) agrees on the owner *)
  List.iter2
    (fun l i ->
      check_int "placement deterministic across instances" i
        (Cluster.Sharded_cache.shard_index c2 (fp l));
      check_bool "owner in range" true (i >= 0 && i < 4))
    layers idxs;
  check_bool "keys spread across shards" true
    (List.length (List.sort_uniq compare idxs) >= 2);
  List.iter (fun l -> Cluster.Sharded_cache.store c1 (fp l) (entry_of l)) layers;
  List.iter
    (fun l ->
      match Cluster.Sharded_cache.find c1 ~arch ~layer:l (fp l) with
      | Some (_, Serve.Schedule_cache.Memory) -> ()
      | _ -> Alcotest.fail "stored entry not found in memory")
    layers;
  (* the aggregate view is exactly the sum of the per-shard counters *)
  let agg = Cluster.Sharded_cache.stats c1 in
  let sum f =
    List.fold_left
      (fun a i -> a + f (Cluster.Sharded_cache.shard_stats c1 i))
      0 [ 0; 1; 2; 3 ]
  in
  check_int "hits aggregate" agg.Serve.Schedule_cache.hits
    (sum (fun s -> s.Serve.Schedule_cache.hits));
  check_int "stores aggregate" agg.Serve.Schedule_cache.stores
    (sum (fun s -> s.Serve.Schedule_cache.stores));
  check_int "all stores counted" (List.length layers)
    agg.Serve.Schedule_cache.stores

(* ---- per-shard persistence, recovery, corruption isolation ------------ *)

let shard_file dir i l =
  Filename.concat
    (Filename.concat dir (Printf.sprintf "shard-%02d" i))
    (Serve.Fingerprint.hash (fp l) ^ ".cosa")

let test_shard_persist_recover () =
  let dir = temp_dir "cosa_cluster" in
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c = Cluster.Sharded_cache.create ~dir ~capacity:64 ~shards:4 () in
      List.iter (fun l -> Cluster.Sharded_cache.store c (fp l) (entry_of l)) layers;
      (* store writes through: the record is already in the owner shard's
         subdirectory, so even a SIGKILL loses nothing *)
      List.iter
        (fun l ->
          let i = Cluster.Sharded_cache.shard_index c (fp l) in
          check_bool ("record in owning shard: " ^ l.Layer.name) true
            (Sys.file_exists (shard_file dir i l)))
        layers;
      (* a fresh instance over the same directory recovers every shard *)
      let c2 = Cluster.Sharded_cache.create ~dir ~capacity:64 ~shards:4 () in
      List.iter
        (fun l ->
          match Cluster.Sharded_cache.find c2 ~arch ~layer:l (fp l) with
          | Some (_, Serve.Schedule_cache.Disk) -> ()
          | Some (_, Serve.Schedule_cache.Memory) ->
            Alcotest.fail "fresh instance should hit the disk tier"
          | None -> Alcotest.fail "disk recovery missed an entry")
        layers;
      (* corrupting one record costs that key only; its reject is counted
         on the owning shard and every other key still verifies *)
      let victim = List.hd layers in
      let vi = Cluster.Sharded_cache.shard_index c (fp victim) in
      let oc = open_out (shard_file dir vi victim) in
      output_string oc "not a schedule record";
      close_out oc;
      let c3 = Cluster.Sharded_cache.create ~dir ~capacity:64 ~shards:4 () in
      (match Cluster.Sharded_cache.find c3 ~arch ~layer:victim (fp victim) with
       | None -> ()
       | Some _ -> Alcotest.fail "corrupted record must not be served");
      check_int "reject counted on the owning shard" 1
        (Cluster.Sharded_cache.shard_stats c3 vi).Serve.Schedule_cache.disk_rejects;
      List.iter
        (fun l ->
          if l != victim then
            match Cluster.Sharded_cache.find c3 ~arch ~layer:l (fp l) with
            | Some _ -> ()
            | None -> Alcotest.fail "corruption leaked beyond its key")
        layers)

(* ---- configurable stale-temp sweep ------------------------------------ *)

let test_tmp_sweep_age () =
  let dir = temp_dir "cosa_sweep" in
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let touch name =
        let p = Filename.concat dir name in
        let oc = open_out p in
        output_string oc "partial write";
        close_out oc;
        p
      in
      let old_tmp = touch "aaaa.cosa.1.0.tmp" in
      let fresh_tmp = touch "bbbb.cosa.2.0.tmp" in
      let past = Unix.time () -. 7200. in
      Unix.utimes old_tmp past past;
      (* threshold 1h: the stale temp goes, the live writer's is spared *)
      ignore (Serve.Schedule_cache.create ~dir ~tmp_sweep_age_s:3600. ~capacity:4 ());
      check_bool "stale temp swept" false (Sys.file_exists old_tmp);
      check_bool "fresh temp spared" true (Sys.file_exists fresh_tmp);
      (* default threshold 0: sweep everything (historical behavior) *)
      ignore (Serve.Schedule_cache.create ~dir ~capacity:4 ());
      check_bool "default sweeps everything" false (Sys.file_exists fresh_tmp))

(* ---- determinism through the thread-safe sharded tier ----------------- *)

let test_jobs_determinism () =
  let net =
    { Network.nname = "cl_net";
      entries =
        List.filteri (fun i _ -> i < 4) layers
        |> List.map (fun l -> { Network.layer = l; repeats = 1 }) }
  in
  let run jobs =
    let sh = Cluster.Sharded_cache.create ~capacity:64 ~shards:4 () in
    let cfg =
      Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:2_000
        ~time_limit:60. ~jobs arch
    in
    let r =
      Serve.Service.schedule_network ~tier:(Cluster.Sharded_cache.tier sh) cfg net
    in
    List.map
      (fun (lr : Serve.Service.layer_report) ->
        match lr.Serve.Service.served with
        | Ok s -> Mapping_io.to_string s.Serve.Service.mapping
        | Error _ -> Alcotest.fail "solve failed")
      r.Serve.Service.layers
  in
  List.iter2
    (check_string "jobs=1 and jobs=4 byte-identical")
    (run 1) (run 4)

(* ---- peer health: ejection and backoff re-admission ------------------- *)

let alloc_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let test_peer_health () =
  let port = alloc_port () in
  let cfg =
    Cluster.Peers.default_config ~probe_interval_s:0.01 ~probe_timeout_s:0.2
      ~eject_after:2 ~readmit_backoff_s:0.02 ~readmit_backoff_max_s:0.1 ()
  in
  let t =
    Cluster.Peers.create ~config:cfg [ Daemon.Client.Tcp ("127.0.0.1", port) ]
  in
  check_int "starts healthy" 1 (Cluster.Peers.stats t).Cluster.Peers.healthy;
  (* nothing listens on the port: consecutive probe failures eject *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rec eject () =
    Cluster.Peers.tick t;
    if (Cluster.Peers.stats t).Cluster.Peers.healthy = 0 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "dead peer never ejected"
    else begin
      Thread.delay 0.02;
      eject ()
    end
  in
  eject ();
  let s = Cluster.Peers.stats t in
  check_int "ejection counted" 1 s.Cluster.Peers.ejections;
  check_bool "ejected peer offers no endpoints" true
    (Cluster.Peers.healthy_endpoints t = []);
  (* bring the endpoint up: the backoff re-probe re-admits it *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 8;
  Fun.protect ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 5. in
      let rec readmit () =
        Cluster.Peers.tick t;
        if (Cluster.Peers.stats t).Cluster.Peers.healthy = 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "peer never re-admitted"
        else begin
          Thread.delay 0.02;
          readmit ()
        end
      in
      readmit ())

(* ---- peer trust: verify-before-serve ---------------------------------- *)

(* A minimal fake peer speaking protocol v2 on a Unix socket: one frame
   per connection, response chosen by the test. *)
let fake_peer respond =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cosa_fake_%d_%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        try
          while not (Atomic.get stop) do
            let c, _ = Unix.accept fd in
            (try
               match P.read_frame c with
               | Ok (Some payload) ->
                 (match P.decode_request payload with
                  | Ok req -> P.write_frame c (P.encode_response (respond req))
                  | Error _ -> ())
               | _ -> ()
             with _ -> ());
            try Unix.close c with Unix.Unix_error _ -> ()
          done
        with _ -> ())
      ()
  in
  let shutdown () =
    Atomic.set stop true;
    (* poison connection so the accept loop observes the flag *)
    (try
       let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Unix.connect c (Unix.ADDR_UNIX path);
       Unix.close c
     with Unix.Unix_error _ -> ());
    Thread.join th;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Sys.remove path with Sys_error _ -> ()
  in
  (path, shutdown)

let scheduled ~name record =
  P.Scheduled
    { P.rung = Robust.Ladder.Joint;
      layers =
        [ { P.name; repeats = 1; origin = "cache(mem)"; verdict = "ok"; record } ];
      total_latency = 1.; total_energy_pj = 1.; queue_wait_s = 0.; serve_s = 0. }

let with_fake_peer respond f =
  let path, shutdown = fake_peer respond in
  Fun.protect ~finally:shutdown
    (fun () ->
      let t = Cluster.Peers.create [ Daemon.Client.Unix_path path ] in
      f t)

(* Provenance meta naming the same objective config as [fp] above — what
   an honest, identically-configured peer's records carry. *)
let good_meta =
  { Mapping_io.default_meta with
    Mapping_io.weights =
      Some (weights.Cosa.w_util, weights.Cosa.w_comp, weights.Cosa.w_traf);
    strategy = Cosa.strategy_to_string Cosa.Two_stage }

let test_peer_verification () =
  let target = List.hd layers in
  let other = List.nth layers 2 in
  let record_of l =
    Mapping_io.record_to_string good_meta (Cosa.trivial_mapping arch l)
  in
  (* honest peer: the record parses, matches the layer, and certifies *)
  with_fake_peer
    (fun req -> scheduled ~name:req.P.client (record_of target))
    (fun t ->
      (match Cluster.Peers.probe t ~arch ~layer:target (fp target) with
       | Some entry ->
         check_string "verdict is ours after re-certification" "ok"
           entry.Serve.Schedule_cache.meta.Mapping_io.verdict;
         check_bool "mapping certifies" true
           (Certify.Mapping_cert.check arch entry.Serve.Schedule_cache.mapping
           = Certify.Certificate.Certified)
       | None -> Alcotest.fail "honest peer answer rejected");
      let s = Cluster.Peers.stats t in
      check_int "hit counted" 1 s.Cluster.Peers.hits;
      check_int "no cert rejects" 0 s.Cluster.Peers.rejects_cert);
  (* lying peer, unparseable record: counted reject, never a serve *)
  with_fake_peer
    (fun req -> scheduled ~name:req.P.client "not a schedule record")
    (fun t ->
      (match Cluster.Peers.probe t ~arch ~layer:target (fp target) with
       | None -> ()
       | Some _ -> Alcotest.fail "garbage record must not be served");
      check_int "cert reject counted" 1
        (Cluster.Peers.stats t).Cluster.Peers.rejects_cert);
  (* lying peer, valid record for the wrong layer: shape check rejects *)
  with_fake_peer
    (fun req -> scheduled ~name:req.P.client (record_of other))
    (fun t ->
      (match Cluster.Peers.probe t ~arch ~layer:target (fp target) with
       | None -> ()
       | Some _ -> Alcotest.fail "wrong-layer record must not be served");
      check_int "shape reject counted" 1
        (Cluster.Peers.stats t).Cluster.Peers.rejects_cert);
  (* live peer without the record: an honest miss, not a reject *)
  with_fake_peer
    (fun _ -> P.Rejected P.Deadline_unmeetable)
    (fun t ->
      (match Cluster.Peers.probe t ~arch ~layer:target (fp target) with
       | None -> ()
       | Some _ -> Alcotest.fail "rejection is not an answer");
      let s = Cluster.Peers.stats t in
      check_int "no cert reject on honest miss" 0 s.Cluster.Peers.rejects_cert;
      check_int "peer stays healthy" 1 s.Cluster.Peers.healthy)

(* A peer running a different objective config returns records that
   parse, shape-match, and even certify — but whose provenance meta
   contradicts the cache key they would be stored under. They must be
   rejected, or one skewed peer poisons the whole local memory tier. *)
let test_peer_config_skew_rejected () =
  let target = List.hd layers in
  let record_with meta =
    Mapping_io.record_to_string meta (Cosa.trivial_mapping arch target)
  in
  let expect_reject what meta =
    with_fake_peer
      (fun req -> scheduled ~name:req.P.client (record_with meta))
      (fun t ->
        (match Cluster.Peers.probe t ~arch ~layer:target (fp target) with
         | None -> ()
         | Some _ -> Alcotest.fail (what ^ " must not be served"))
        ;
        check_int (what ^ " counted as cert reject") 1
          (Cluster.Peers.stats t).Cluster.Peers.rejects_cert)
  in
  (* control: identical config is accepted (the check is not vacuous) *)
  with_fake_peer
    (fun req -> scheduled ~name:req.P.client (record_with good_meta))
    (fun t ->
      match Cluster.Peers.probe t ~arch ~layer:target (fp target) with
      | Some _ -> ()
      | None -> Alcotest.fail "matching-config record rejected");
  expect_reject "weights-skewed record"
    { good_meta with
      Mapping_io.weights =
        Some (weights.Cosa.w_util +. 0.5, weights.Cosa.w_comp, weights.Cosa.w_traf) };
  expect_reject "strategy-skewed record"
    { good_meta with Mapping_io.strategy = Cosa.strategy_to_string Cosa.Joint };
  expect_reject "provenance-free record" Mapping_io.default_meta

(* End to end through the daemon: a corrupted peer response is a counted
   miss, and the request degrades to a live (still certified) solve. *)
let test_corrupt_peer_degrades_to_live_solve () =
  with_fake_peer
    (fun req ->
      let name =
        match req.P.target with P.Layer n | P.Network n -> n
      in
      scheduled ~name "corrupt bytes from a lying peer")
    (fun peers ->
      let sock =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "cosa_clsrv_%d_%d.sock" (Unix.getpid ()) (Random.bits ()))
      in
      let service =
        Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:2_000
          ~time_limit:0.6 Spec.baseline
      in
      let admission =
        Daemon.Admission.default_config ~queue_capacity:4 ~time_limit:0.6 ()
      in
      let server =
        Daemon.Server.create
          (Daemon.Server.config ~admission ~default_budget_s:10.
             ~remote_probe:(fun ~arch ~layer fp ->
               Cluster.Peers.probe peers ~arch ~layer fp)
             ~socket_path:sock service)
      in
      let thread = Daemon.Server.start server in
      Daemon.Server.wait_ready server;
      Fun.protect
        ~finally:(fun () ->
          Daemon.Server.shutdown server;
          Thread.join thread)
        (fun () ->
          match
            Daemon.Client.one_shot sock
              { P.client = ""; budget_s = 10.; arch = "baseline";
                target = P.Layer "3_56_64_64_1"; cache_only = false; req_id = 0L;
                hop = 0 }
          with
          | Ok (P.Scheduled s) ->
            (match s.P.layers with
             | [ l ] ->
               check_bool "not served from the corrupt peer" true
                 (l.P.origin <> "cache(peer)");
               check_string "live solve still certifies" "ok" l.P.verdict
             | _ -> Alcotest.fail "expected one layer")
          | _ -> Alcotest.fail "expected a live-solved Scheduled");
      check_bool "corrupt peer answer counted as cert reject" true
        ((Cluster.Peers.stats peers).Cluster.Peers.rejects_cert >= 1))

(* ---- request-id propagation across hops -------------------------------- *)

(* One wire request id must thread client -> daemon -> warm-peer probe:
   the daemon serves under the client's id, the outbound probe carries
   (id, hop+1) on the wire, and the same 16-hex-digit rendering shows up
   in the trace export, the structured event log, and the daemon's
   flight recorder. *)
let test_request_id_propagation () =
  Telemetry.Sink.set Telemetry.Sink.Memory;
  Telemetry.Trace.reset ();
  Telemetry.Log.set ~level:Telemetry.Log.Debug Telemetry.Log.Memory;
  let probe_seen = ref None in
  let path, shutdown_peer =
    fake_peer (fun req ->
        probe_seen := Some (req.P.req_id, req.P.hop);
        (* honest miss: the daemon solves locally and still serves *)
        P.Rejected P.Deadline_unmeetable)
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown_peer ();
      Telemetry.Log.set Telemetry.Log.Null;
      Telemetry.Sink.set Telemetry.Sink.Null)
    (fun () ->
      let peers = Cluster.Peers.create [ Daemon.Client.Unix_path path ] in
      let sock =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "cosa_reqid_%d_%d.sock" (Unix.getpid ()) (Random.bits ()))
      in
      let service =
        Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:2_000
          ~time_limit:0.6 arch
      in
      let admission =
        Daemon.Admission.default_config ~queue_capacity:4 ~time_limit:0.6 ()
      in
      let server =
        Daemon.Server.create
          (Daemon.Server.config ~admission ~default_budget_s:10.
             ~remote_probe:(fun ~arch ~layer fp ->
               Cluster.Peers.probe peers ~arch ~layer fp)
             ~socket_path:sock service)
      in
      let thread = Daemon.Server.start server in
      Daemon.Server.wait_ready server;
      let id = 0x00ab_cdef_0123_4567L in
      let hex = Telemetry.Trace.request_id_hex id in
      Fun.protect
        ~finally:(fun () ->
          Daemon.Server.shutdown server;
          Thread.join thread)
        (fun () ->
          (match
             Daemon.Client.one_shot sock
               { P.client = ""; budget_s = 10.; arch = "baseline";
                 target = P.Layer "3_56_64_64_1"; cache_only = false;
                 req_id = id; hop = 0 }
           with
           | Ok (P.Scheduled _) -> ()
           | _ -> Alcotest.fail "expected a Scheduled response");
          (* the outbound peer probe carried the same id, one hop deeper *)
          (match !probe_seen with
           | Some (pid, phop) ->
             check_bool "peer probe carries the id" true (pid = id);
             check_int "peer probe hop incremented" 1 phop
           | None -> Alcotest.fail "warm peer was never probed");
          (* flight recorder: the daemon's record of this request *)
          let flight = Daemon.Server.stats_payload server P.Stats_flight in
          check_bool "flight recorder carries the id" true (contains flight hex);
          (* trace export: at least one event tagged with the id *)
          check_bool "trace events tagged with the id" true
            (List.exists
               (fun (e : Telemetry.Trace.event) ->
                 List.assoc_opt "req" e.Telemetry.Trace.args = Some hex)
               (Telemetry.Trace.events ()));
          (* structured event log: the serve line carries the id *)
          check_bool "event log carries the id" true
            (List.exists
               (fun line -> contains line hex && contains line "daemon.serve")
               (Telemetry.Log.captured ()))))

(* ---- peek probes and miss accounting ---------------------------------- *)

(* The daemon's connection-thread fast path peeks the tier before the
   solver path probes it authoritatively: a peek miss must not be booked
   (or every missing request would count 2+ misses and deflate the
   hit-rate window admission prices against), while hits always count. *)
let test_peek_no_miss_accounting () =
  let sh = Cluster.Sharded_cache.create ~capacity:16 ~shards:2 () in
  let tier = Cluster.Sharded_cache.tier sh in
  let l = List.hd layers in
  (match tier.Serve.Service.tier_peek ~arch ~layer:l (fp l) with
   | None -> ()
   | Some _ -> Alcotest.fail "empty cache cannot hit");
  check_int "peek miss not booked" 0
    (Cluster.Sharded_cache.stats sh).Serve.Schedule_cache.misses;
  (match tier.Serve.Service.tier_find ~arch ~layer:l (fp l) with
   | None -> ()
   | Some _ -> Alcotest.fail "empty cache cannot hit");
  check_int "authoritative miss booked" 1
    (Cluster.Sharded_cache.stats sh).Serve.Schedule_cache.misses;
  Cluster.Sharded_cache.store sh (fp l) (entry_of l);
  (match tier.Serve.Service.tier_peek ~arch ~layer:l (fp l) with
   | Some _ -> ()
   | None -> Alcotest.fail "stored entry must peek");
  check_int "peek hit booked" 1
    (Cluster.Sharded_cache.stats sh).Serve.Schedule_cache.hits;
  check_int "hit books no miss" 1
    (Cluster.Sharded_cache.stats sh).Serve.Schedule_cache.misses

(* ---- client: bounded connect, terminal protocol errors ---------------- *)

(* A black-holed peer must cost at most the connect budget, not the
   kernel's ~minutes TCP timeout — this is what keeps a dead peer from
   stalling the daemon's accept loop and solver thread for whole probe
   cycles. Simulate the black hole locally: a listener whose accept
   queue is saturated drops further SYNs, so an unbounded connect hangs
   in retransmission. Only boundedness is asserted — some network
   fabrics complete the handshake anyway, which is also a fast return. *)
let test_connect_timeout_bounded () =
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 1;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (* saturate the accept queue with connections nobody will accept *)
  let stuffers =
    List.init 8 (fun _ ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_nonblock s;
        (try Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
         with
         | Unix.Unix_error
             ( ( Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN
               | Unix.ECONNREFUSED ),
               _, _ ) -> ());
        s)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
        stuffers;
      Unix.close srv)
    (fun () ->
      Thread.delay 0.05;
      let t0 = Unix.gettimeofday () in
      (match
         Daemon.Client.connect_ep ~timeout_s:0.3
           (Daemon.Client.Tcp ("127.0.0.1", port))
       with
       | Ok c -> Daemon.Client.close c
       | Error _ -> ());
      check_bool "connect bounded by the budget" true
        (Unix.gettimeofday () -. t0 < 5.));
  (* the non-blocking path still completes a legitimate connect *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 8;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Fun.protect ~finally:(fun () -> Unix.close fd)
    (fun () ->
      match
        Daemon.Client.connect_ep ~timeout_s:1. (Daemon.Client.Tcp ("127.0.0.1", port))
      with
      | Ok c -> Daemon.Client.close c
      | Error msg -> Alcotest.fail ("bounded connect to live listener: " ^ msg))

(* A server speaking the wrong protocol version answers every exchange
   with an undecodable (but well-framed) response. That is a permanent
   property of the peer: failover must surface it immediately instead of
   burning every retry and backoff against it. *)
let test_failover_protocol_error_terminal () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cosa_badver_%d_%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  let conns = Atomic.make 0 in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        try
          while not (Atomic.get stop) do
            let c, _ = Unix.accept fd in
            if not (Atomic.get stop) then Atomic.incr conns;
            (try
               match P.read_frame c with
               | Ok (Some _) ->
                 (* right magic, wrong version: decodes to a typed
                    expected-vs-got protocol error on the client *)
                 P.write_frame c (Bytes.of_string "\xC5\x63junk")
               | _ -> ()
             with _ -> ());
            try Unix.close c with Unix.Unix_error _ -> ()
          done
        with _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (try
         let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Unix.connect c (Unix.ADDR_UNIX path);
         Unix.close c
       with Unix.Unix_error _ -> ());
      Thread.join th;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match
        Daemon.Client.request_failover ~retries:3 ~backoff_s:0.001 ~timeout_s:2.
          ~endpoints:[ Daemon.Client.Unix_path path ]
          { P.client = ""; budget_s = 1.; arch = "baseline";
            target = P.Layer "cl_a"; cache_only = false; req_id = 0L; hop = 0 }
      with
      | Ok _ -> Alcotest.fail "undecodable response must not yield Ok"
      | Error msg ->
        check_bool "error names the version mismatch" true
          (contains msg "version mismatch");
        check_bool "error marked terminal" true (contains msg "not retried");
        check_int "exactly one exchange: no retries burned" 1 (Atomic.get conns))

let suite =
  ( "cluster",
    [
      Alcotest.test_case "shard placement + aggregate stats" `Quick
        test_shard_placement;
      Alcotest.test_case "per-shard persist/recover/corruption" `Quick
        test_shard_persist_recover;
      Alcotest.test_case "stale-temp sweep age threshold" `Quick
        test_tmp_sweep_age;
      Alcotest.test_case "jobs=1 = jobs=4 through sharded tier" `Slow
        test_jobs_determinism;
      Alcotest.test_case "peer ejection + re-admission" `Slow test_peer_health;
      Alcotest.test_case "peer answers verified before serve" `Quick
        test_peer_verification;
      Alcotest.test_case "config-skewed peer records rejected" `Quick
        test_peer_config_skew_rejected;
      Alcotest.test_case "corrupt peer -> counted miss + live solve" `Slow
        test_corrupt_peer_degrades_to_live_solve;
      Alcotest.test_case "request id threads client->daemon->peer" `Slow
        test_request_id_propagation;
      Alcotest.test_case "peek probes book no misses" `Quick
        test_peek_no_miss_accounting;
      Alcotest.test_case "connect bounded by timeout" `Quick
        test_connect_timeout_bounded;
      Alcotest.test_case "protocol errors terminal in failover" `Quick
        test_failover_protocol_error_terminal;
    ] )
