(* Lower-level simplex tests: standard-form problems fed directly to
   Milp.Simplex (bypassing the Lp/Bb layers). *)

open Milp

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* build a standard-form problem from dense rows *)
let problem ~rows ~cost ~lb ~ub ~rhs =
  let nrows = Array.length rows in
  let ncols = Array.length cost in
  let cols =
    Array.init ncols (fun j ->
        let entries = ref [] in
        for i = nrows - 1 downto 0 do
          if rows.(i).(j) <> 0. then entries := (i, rows.(i).(j)) :: !entries
        done;
        ( Array.of_list (List.map fst !entries),
          Array.of_list (List.map snd !entries) ))
  in
  { Simplex.nrows; ncols; cols; cost; lb; ub; rhs }

let test_simple_equality () =
  (* min x1 + x2 st x1 + x2 = 2, 0 <= xi <= 2 -> obj 2 *)
  let p =
    problem
      ~rows:[| [| 1.; 1. |] |]
      ~cost:[| 1.; 1. |]
      ~lb:[| 0.; 0. |]
      ~ub:[| 2.; 2. |]
      ~rhs:[| 2. |]
  in
  let r = Simplex.solve p in
  check_bool "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "obj" 2. r.Simplex.obj;
  check_bool "feasible" true (Simplex.feasible p r.Simplex.x)

let test_bound_flip () =
  (* maximize x (cost -1) with a slack-style column: x + s = 10, x <= 3:
     x should flip to its upper bound without entering the basis chain *)
  let p =
    problem
      ~rows:[| [| 1.; 1. |] |]
      ~cost:[| -1.; 0. |]
      ~lb:[| 0.; 0. |]
      ~ub:[| 3.; infinity |]
      ~rhs:[| 10. |]
  in
  let r = Simplex.solve p in
  check_float "x at upper bound" 3. r.Simplex.x.(0);
  check_float "slack fills" 7. r.Simplex.x.(1)

let test_negative_rhs () =
  (* x1 - x2 = -3 with x free-ish bounds *)
  let p =
    problem
      ~rows:[| [| 1.; -1. |] |]
      ~cost:[| 1.; 1. |]
      ~lb:[| 0.; 0. |]
      ~ub:[| 10.; 10. |]
      ~rhs:[| -3. |]
  in
  let r = Simplex.solve p in
  check_bool "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "obj = 3 (x2 = 3)" 3. r.Simplex.obj

let test_degenerate () =
  (* several constraints intersecting at the same vertex: anti-cycling must
     still terminate *)
  let p =
    problem
      ~rows:[| [| 1.; 1.; 1. |]; [| 1.; 1.; 0. |]; [| 1.; 0.; 0. |] |]
      ~cost:[| -1.; -1.; -1. |]
      ~lb:[| 0.; 0.; 0. |]
      ~ub:[| infinity; infinity; infinity |]
      ~rhs:[| 1.; 1.; 1. |]
  in
  let r = Simplex.solve p in
  check_bool "terminates optimally" true (r.Simplex.status = Simplex.Optimal);
  check_float "obj" (-1.) r.Simplex.obj

let test_infeasible_equalities () =
  let p =
    problem
      ~rows:[| [| 1. |]; [| 1. |] |]
      ~cost:[| 0. |]
      ~lb:[| 0. |]
      ~ub:[| 10. |]
      ~rhs:[| 1.; 2. |]
  in
  check_bool "infeasible" true ((Simplex.solve p).Simplex.status = Simplex.Infeasible)

let test_free_variable () =
  (* a variable with no finite bounds, pinned only by an equality *)
  let p =
    problem
      ~rows:[| [| 1.; 1. |] |]
      ~cost:[| 1.; 0. |]
      ~lb:[| neg_infinity; 0. |]
      ~ub:[| infinity; 5. |]
      ~rhs:[| 2. |]
  in
  let r = Simplex.solve p in
  (* min x1 with x1 = 2 - x2, x2 <= 5 -> x1 = -3 *)
  check_float "obj" (-3.) r.Simplex.obj

let test_larger_random_consistency () =
  (* a moderately sized random LP: simplex result must satisfy feasibility
     and match a second solve exactly (determinism) *)
  let rng = Prim.Rng.create 55 in
  let nrows = 12 and ncols = 20 in
  let rows =
    Array.init nrows (fun _ ->
        Array.init ncols (fun _ ->
            if Prim.Rng.int rng 3 = 0 then float_of_int (1 + Prim.Rng.int rng 4) else 0.))
  in
  (* guarantee feasibility: rhs = A * ones *)
  let rhs = Array.map (fun row -> Array.fold_left ( +. ) 0. row) rows in
  let cost = Array.init ncols (fun _ -> float_of_int (Prim.Rng.int rng 7 - 3)) in
  let p =
    problem ~rows ~cost
      ~lb:(Array.make ncols 0.)
      ~ub:(Array.make ncols 10.)
      ~rhs
  in
  let r1 = Simplex.solve p and r2 = Simplex.solve p in
  check_bool "optimal" true (r1.Simplex.status = Simplex.Optimal);
  check_bool "feasible" true (Simplex.feasible p r1.Simplex.x);
  check_float "deterministic" r1.Simplex.obj r2.Simplex.obj;
  (* all-ones is feasible, so the minimum is at most cost . ones *)
  let ones_obj = Array.fold_left ( +. ) 0. cost in
  check_bool "no worse than ones" true (r1.Simplex.obj <= ones_obj +. 1e-6)

let test_iteration_limit () =
  let p =
    problem
      ~rows:[| [| 1.; 1. |] |]
      ~cost:[| -1.; -1. |]
      ~lb:[| 0.; 0. |]
      ~ub:[| 5.; 5. |]
      ~rhs:[| 4. |]
  in
  let r = Simplex.solve ~max_iterations:0 p in
  check_bool "reports limit" true (r.Simplex.status = Simplex.Iteration_limit)

(* ---- warm-start (dual simplex) unit tests ------------------------------ *)

let solve_ok ?warm p =
  match Simplex.solve_r ?warm p with
  | Ok r -> r
  | Error f -> Alcotest.failf "solve_r failed: %s" (Robust.Failure.to_string f)

let test_warm_basis_returned () =
  let p =
    problem
      ~rows:[| [| 1.; 1.; 1. |]; [| 1.; 2.; 0. |] |]
      ~cost:[| 1.; 2.; -1. |]
      ~lb:[| 0.; 0.; 0. |]
      ~ub:[| 4.; 4.; 4. |]
      ~rhs:[| 5.; 4. |]
  in
  let r = solve_ok p in
  check_bool "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_bool "cold solve" false r.Simplex.warm;
  check_bool "basis returned" true (r.Simplex.basis <> None)

let test_warm_agrees_with_cold () =
  (* tighten one bound (the branch-and-bound child situation): warm dual
     reoptimization from the parent basis must agree with a cold solve —
     same status, same objective, and bit-identical x after vertex
     canonicalization *)
  let parent =
    problem
      ~rows:[| [| 1.; 1.; 1.; 0. |]; [| 2.; 1.; 0.; 1. |] |]
      ~cost:[| -2.; -3.; 1.; 1. |]
      ~lb:[| 0.; 0.; 0.; 0. |]
      ~ub:[| 5.; 5.; 8.; 8. |]
      ~rhs:[| 6.; 7. |]
  in
  let root = solve_ok parent in
  check_bool "root optimal" true (root.Simplex.status = Simplex.Optimal);
  let basis = Option.get root.Simplex.basis in
  let ub = Array.copy parent.Simplex.ub in
  ub.(1) <- 1.;
  let child = { parent with Simplex.ub } in
  let w = solve_ok ~warm:basis child in
  let c = solve_ok child in
  check_bool "warm path used" true w.Simplex.warm;
  check_bool "same status" true (w.Simplex.status = c.Simplex.status);
  check_float "same objective" c.Simplex.obj w.Simplex.obj;
  check_bool "bit-identical solution" true (w.Simplex.x = c.Simplex.x);
  check_bool "warm solution feasible" true (Simplex.feasible child w.Simplex.x)

let test_warm_detects_infeasible_child () =
  (* both variables forced high while the equality pins their sum low: the
     warm dual solve must prove infeasibility, exactly like the cold one *)
  let parent =
    problem
      ~rows:[| [| 1.; 1. |] |]
      ~cost:[| 1.; 1. |]
      ~lb:[| 0.; 0. |]
      ~ub:[| 4.; 4. |]
      ~rhs:[| 3. |]
  in
  let root = solve_ok parent in
  let basis = Option.get root.Simplex.basis in
  let lb = [| 2.; 2. |] in
  let child = { parent with Simplex.lb } in
  let w = solve_ok ~warm:basis child in
  let c = solve_ok child in
  check_bool "cold infeasible" true (c.Simplex.status = Simplex.Infeasible);
  check_bool "warm infeasible" true (w.Simplex.status = Simplex.Infeasible)

let test_warm_rejects_stale_basis () =
  (* a basis with the wrong dimensions must fall back to the cold path, not
     fail the solve *)
  let p =
    problem
      ~rows:[| [| 1.; 1. |] |]
      ~cost:[| 1.; 1. |]
      ~lb:[| 0.; 0. |]
      ~ub:[| 2.; 2. |]
      ~rhs:[| 2. |]
  in
  let bogus =
    { Simplex.Basis.basic = [| 0; 1; 2 |];
      vstat = Array.make 7 Simplex.Basis.Vlower }
  in
  let r = solve_ok ~warm:bogus p in
  check_bool "fell back cold" false r.Simplex.warm;
  check_bool "still optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "obj" 2. r.Simplex.obj

let suite =
  ( "simplex",
    [
      Alcotest.test_case "equality" `Quick test_simple_equality;
      Alcotest.test_case "bound flip" `Quick test_bound_flip;
      Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
      Alcotest.test_case "degenerate" `Quick test_degenerate;
      Alcotest.test_case "infeasible equalities" `Quick test_infeasible_equalities;
      Alcotest.test_case "free variable" `Quick test_free_variable;
      Alcotest.test_case "random LP consistency" `Quick test_larger_random_consistency;
      Alcotest.test_case "iteration limit" `Quick test_iteration_limit;
      Alcotest.test_case "warm basis returned" `Quick test_warm_basis_returned;
      Alcotest.test_case "warm agrees with cold" `Quick test_warm_agrees_with_cold;
      Alcotest.test_case "warm detects infeasible child" `Quick
        test_warm_detects_infeasible_child;
      Alcotest.test_case "warm rejects stale basis" `Quick test_warm_rejects_stale_basis;
    ] )
