(* Tests for schedule serialisation. *)

let check_bool = Alcotest.(check bool)

let arch = Spec.baseline

let test_roundtrip_simple () =
  let layer = Layer.create ~name:"io_t" ~r:3 ~s:3 ~p:8 ~q:8 ~c:16 ~k:16 ~n:1 ~stride:2 () in
  let rng = Prim.Rng.create 88 in
  match Sampler.valid rng arch layer with
  | None -> Alcotest.fail "sampler failed"
  | Some m ->
    let text = Mapping_io.to_string m in
    (match Mapping_io.of_string text with
     | Error e -> Alcotest.fail e
     | Ok m' ->
       Alcotest.(check string) "fingerprints equal" (Mapping.fingerprint m)
         (Mapping.fingerprint m');
       Alcotest.(check string) "layer preserved" (Layer.to_string m.Mapping.layer)
         (Layer.to_string m'.Mapping.layer))

let test_roundtrip_file () =
  let layer = Zoo.find "g3_56_4_4_1" in
  let m = Cosa.trivial_mapping arch layer in
  let path = Filename.temp_file "cosa_map" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mapping_io.save path m;
      match Mapping_io.load path with
      | Ok m' ->
        Alcotest.(check string) "file roundtrip" (Mapping.fingerprint m)
          (Mapping.fingerprint m')
      | Error e -> Alcotest.fail e)

(* property: a save/load cycle through an actual file is lossless for
   sampler-produced valid mappings, including strided layers and layer
   metadata — complements the in-memory roundtrip property below *)
let prop_file_roundtrip =
  QCheck.Test.make ~name:"file save/load roundtrips strided mappings" ~count:20
    (QCheck.make
       ~print:(fun (l, seed) -> Printf.sprintf "%s seed=%d" (Layer.to_string l) seed)
       QCheck.Gen.(
         pair
           (map
              (fun ((r, st), (p, (c, k))) ->
                Layer.create ~name:"io_prop" ~r ~s:r ~p ~q:p ~c ~k ~n:1 ~stride:st ())
              (pair (pair (int_range 1 3) (int_range 1 2))
                 (pair (int_range 1 16) (pair (int_range 1 64) (int_range 1 64)))))
           (int_range 0 10_000)))
    (fun (layer, seed) ->
      let rng = Prim.Rng.create seed in
      match Sampler.valid rng arch layer with
      | None -> true
      | Some m ->
        let path = Filename.temp_file "cosa_map_prop" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Mapping_io.save path m;
            match Mapping_io.load path with
            | Error _ -> false
            | Ok m' ->
              String.equal (Mapping.fingerprint m) (Mapping.fingerprint m')
              && String.equal (Layer.to_string m.Mapping.layer)
                   (Layer.to_string m'.Mapping.layer)))

let expect_error what text =
  match Mapping_io.of_string text with
  | Ok _ -> Alcotest.fail (what ^ ": expected a parse error")
  | Error _ -> ()

let test_parse_errors () =
  expect_error "empty" "";
  expect_error "no layer line" "level 0\n";
  expect_error "bad dim" "layer x r=1 s=1 p=1 q=1 c=1 k=1 n=1 stride=1\nlevel 0 temporal Z:4\n";
  expect_error "bad bound" "layer x r=1 s=1 p=1 q=1 c=1 k=1 n=1 stride=1\nlevel 0 temporal P:zero\n";
  expect_error "negative bound" "layer x r=1 s=1 p=1 q=1 c=1 k=1 n=1 stride=1\nlevel 0 temporal P:-2\n";
  expect_error "missing kv" "layer x r=1 s=1 p=1 q=1 c=1 k=1 n=1\nlevel 0\n";
  expect_error "levels out of order" "layer x r=1 s=1 p=1 q=1 c=1 k=1 n=1 stride=1\nlevel 1\n";
  expect_error "no levels" "layer x r=1 s=1 p=1 q=1 c=1 k=1 n=1 stride=1\n"

let test_parse_valid_text () =
  let text =
    "layer demo r=1 s=1 p=4 q=4 c=8 k=8 n=1 stride=1\n\
     level 0 temporal P:4,Q:4 spatial K:8\n\
     level 1\n\
     level 2 temporal C:2\n\
     level 3 spatial C:4\n\
     level 4\n\
     level 5\n"
  in
  match Mapping_io.of_string text with
  | Error e -> Alcotest.fail e
  | Ok m ->
    check_bool "valid on baseline" true (Mapping.is_valid arch m);
    Alcotest.(check int) "six levels" 6 (Array.length m.Mapping.levels);
    Alcotest.(check int) "K spatial" 8 (Mapping.spatial_product m 0)

(* ---- provenance-carrying records -------------------------------------- *)

let meta_eq (a : Mapping_io.meta) (b : Mapping_io.meta) =
  (* bit-exact float comparison is the point: %h must round-trip doubles *)
  a.Mapping_io.weights = b.Mapping_io.weights
  && a.Mapping_io.strategy = b.Mapping_io.strategy
  && a.Mapping_io.source = b.Mapping_io.source
  && a.Mapping_io.verdict = b.Mapping_io.verdict
  && a.Mapping_io.objective = b.Mapping_io.objective
  && a.Mapping_io.solve_time = b.Mapping_io.solve_time

let test_record_roundtrip () =
  let layer = Zoo.find "g3_56_4_4_1" in
  let m = Cosa.trivial_mapping arch layer in
  let meta =
    { Mapping_io.weights = Some (0.1, 1e-300, 12345.6789);
      strategy = "two-stage"; source = "two-stage MIP"; verdict = "ok";
      objective = Some (1. /. 3., Float.pi, 0x1.fffffffffffffp-2, 98.34);
      solve_time = 0.4375 }
  in
  let path = Filename.temp_file "cosa_rec" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mapping_io.save_record path meta m;
      match Mapping_io.load_record path with
      | Error e -> Alcotest.fail e
      | Ok (meta', m') ->
        check_bool "meta bit-exact" true (meta_eq meta meta');
        Alcotest.(check string) "mapping preserved" (Mapping.fingerprint m)
          (Mapping.fingerprint m'));
  (* a bare legacy mapping (no @-lines) still loads, with default meta *)
  (match Mapping_io.record_of_string (Mapping_io.to_string m) with
   | Ok (meta', m') ->
     check_bool "legacy text gets default meta" true
       (meta_eq Mapping_io.default_meta meta');
     Alcotest.(check string) "legacy mapping intact" (Mapping.fingerprint m)
       (Mapping.fingerprint m')
   | Error e -> Alcotest.fail e);
  (* unknown metadata keys are an error, not silently dropped *)
  (match Mapping_io.record_of_string ("@bogus 1\n" ^ Mapping_io.to_string m) with
   | Ok _ -> Alcotest.fail "unknown @key should be rejected"
   | Error _ -> ())

(* property: records round-trip any finite provenance floats bit-exactly,
   including subnormals and values with no short decimal form *)
let prop_record_roundtrip =
  let finite = QCheck.Gen.map (fun (a, b) -> Int64.float_of_bits (Int64.logxor (Int64.of_int a) (Int64.shift_left (Int64.of_int b) 31))) QCheck.Gen.(pair (int_bound max_int) (int_bound max_int)) in
  let finite = QCheck.Gen.map (fun f -> if Float.is_nan f || Float.abs f = infinity then 0.5 else f) finite in
  QCheck.Test.make ~name:"provenance records roundtrip floats bit-exactly" ~count:50
    (QCheck.make
       ~print:(fun (u, c, t, total, st) ->
         Printf.sprintf "%h %h %h %h %h" u c t total st)
       QCheck.Gen.(
         map
           (fun (u, (c, (t, (total, st)))) -> (u, c, t, total, st))
           (pair finite (pair finite (pair finite (pair finite finite))))))
    (fun (u, c, t, total, st) ->
      let layer = Zoo.find "g3_56_4_4_1" in
      let m = Cosa.trivial_mapping arch layer in
      let meta =
        { Mapping_io.weights = Some (u, c, t); strategy = "auto"; source = "joint MIP";
          verdict = "skipped"; objective = Some (u, c, t, total); solve_time = st }
      in
      match Mapping_io.record_of_string (Mapping_io.record_to_string meta m) with
      | Error _ -> false
      | Ok (meta', m') ->
        meta_eq meta meta' && Mapping.fingerprint m = Mapping.fingerprint m')

let prop_roundtrip =
  QCheck.Test.make ~name:"serialisation roundtrips random valid mappings" ~count:40
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (r, (p, (c, k))) -> Layer.create ~r ~s:r ~p ~q:p ~c ~k ~n:1 ())
           (pair (int_range 1 3) (pair (int_range 1 16) (pair (int_range 1 64) (int_range 1 64))))))
    (fun layer ->
      let rng = Prim.Rng.create 89 in
      match Sampler.valid rng arch layer with
      | None -> true
      | Some m ->
        (match Mapping_io.of_string (Mapping_io.to_string m) with
         | Ok m' -> Mapping.fingerprint m = Mapping.fingerprint m'
         | Error _ -> false))

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "mapping_io",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip_simple;
      Alcotest.test_case "file roundtrip" `Quick test_roundtrip_file;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse valid text" `Quick test_parse_valid_text;
      Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
      qc prop_roundtrip;
      qc prop_file_roundtrip;
      qc prop_record_roundtrip;
    ] )
