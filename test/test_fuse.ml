(* Tests for the cross-layer fusion subsystem: chain derivation over a
   network's execution order, the exact-arithmetic fusion certifier
   (Certify.Fuse_cert), the MIP-backed fusion planner and its degradation
   provenance, and the --fuse=off identity with the per-layer service. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arch = Spec.baseline

let certified what = function
  | Certify.Certificate.Certified -> ()
  | Certify.Certificate.Violated _ as c ->
    Alcotest.failf "%s: expected certified, got %s" what
      (Certify.Certificate.to_string c)

let violated_on what frag cert =
  match cert with
  | Certify.Certificate.Certified -> Alcotest.failf "%s: expected a violation" what
  | Certify.Certificate.Violated vs ->
    let mentions (v : Certify.Certificate.violation) =
      let name = v.Certify.Certificate.constraint_name in
      let n = String.length name and m = String.length frag in
      let rec go i = i + m <= n && (String.sub name i m = frag || go (i + 1)) in
      go 0
    in
    check_bool
      (Printf.sprintf "%s: some violation names %S (got: %s)" what frag
         (String.concat "; "
            (List.map (fun v -> v.Certify.Certificate.constraint_name) vs)))
      true
      (List.exists mentions vs)

let net_of ~name entries =
  { Network.nname = name;
    entries = List.map (fun (l, repeats) -> { Network.layer = l; repeats }) entries }

(* the ResNet-50 conv2_x bottleneck chain *)
let bn1 = Layer.create ~name:"bn1" ~r:1 ~s:1 ~p:56 ~q:56 ~c:256 ~k:64 ~n:1 ()
let bn2 = Layer.create ~name:"bn2" ~r:3 ~s:3 ~p:56 ~q:56 ~c:64 ~k:64 ~n:1 ()
let bn3 = Layer.create ~name:"bn3" ~r:1 ~s:1 ~p:56 ~q:56 ~c:64 ~k:256 ~n:1 ()

(* a small chain so planner/service tests stay fast *)
let sm1 = Layer.create ~name:"sm1" ~r:3 ~s:3 ~p:8 ~q:8 ~c:8 ~k:16 ~n:1 ()
let sm2 = Layer.create ~name:"sm2" ~r:3 ~s:3 ~p:8 ~q:8 ~c:16 ~k:16 ~n:1 ()
let sm3 = Layer.create ~name:"sm3" ~r:1 ~s:1 ~p:8 ~q:8 ~c:16 ~k:32 ~n:1 ()
let small_chain = net_of ~name:"small_chain" [ (sm1, 1); (sm2, 1); (sm3, 1) ]

(* ---- chain derivation ------------------------------------------------- *)

let test_adjacent () =
  check_bool "bn1 -> bn2" true (Fuse.Chain.adjacent bn1 bn2);
  check_bool "bn2 -> bn3" true (Fuse.Chain.adjacent bn2 bn3);
  (* channel mismatch: bn2 produces 64, bn1 consumes 256 *)
  check_bool "bn2 -> bn1 (channels)" false (Fuse.Chain.adjacent bn2 bn1);
  (* spatial mismatch through stride *)
  let half = Layer.create ~name:"half" ~stride:2 ~r:3 ~s:3 ~p:28 ~q:28 ~c:64 ~k:64 ~n:1 () in
  check_bool "bn2 -> stride-2 consumer" true (Fuse.Chain.adjacent bn2 half);
  let bad = Layer.create ~name:"bad" ~r:3 ~s:3 ~p:28 ~q:28 ~c:64 ~k:64 ~n:1 () in
  check_bool "bn2 -> 28x28 stride-1 consumer" false (Fuse.Chain.adjacent bn2 bad);
  (* batch mismatch *)
  let b4 = Layer.create ~name:"b4" ~r:3 ~s:3 ~p:56 ~q:56 ~c:64 ~k:64 ~n:4 () in
  check_bool "batch mismatch" false (Fuse.Chain.adjacent bn1 b4)

let test_derive_block () =
  let groups = Fuse.Chain.derive Network.resnet50_block in
  check_int "one group" 1 (List.length groups);
  let g = List.hd groups in
  check_int "three members" 3 (List.length g.Fuse.Chain.members);
  check_int "count 1" 1 g.Fuse.Chain.count;
  check_int "grouped instances" 3 (Fuse.Chain.grouped_instances groups)

let test_derive_max_group () =
  let groups = Fuse.Chain.derive ~max_group:2 Network.resnet50_block in
  check_int "one group of two" 1 (List.length groups);
  check_int "two members" 2 (List.length (List.hd groups).Fuse.Chain.members);
  (* the leftover single instance is not a group *)
  check_int "grouped instances" 2 (Fuse.Chain.grouped_instances groups)

let test_derive_dedup () =
  (* bn3 (k=256) feeds bn1 (c=256) at the same spatial extent, so listing
     the block twice is one maximal run of 6, cut into two identical
     3-chains that dedup to a single group with count 2 *)
  let net =
    net_of ~name:"two_blocks"
      [ (bn1, 1); (bn2, 1); (bn3, 1); (bn1, 1); (bn2, 1); (bn3, 1) ]
  in
  let groups = Fuse.Chain.derive net in
  check_int "one distinct group" 1 (List.length groups);
  check_int "count 2" 2 (List.hd groups).Fuse.Chain.count;
  check_int "grouped instances" 6 (Fuse.Chain.grouped_instances groups)

let test_derive_no_chain () =
  let a = Layer.create ~name:"a" ~r:1 ~s:1 ~p:8 ~q:8 ~c:8 ~k:8 ~n:1 () in
  let b = Layer.create ~name:"b" ~r:1 ~s:1 ~p:8 ~q:8 ~c:32 ~k:8 ~n:1 () in
  check_int "no fusable pair" 0
    (List.length (Fuse.Chain.derive (net_of ~name:"nc" [ (a, 1); (b, 1) ])))

let test_group_hash () =
  let g = List.hd (Fuse.Chain.derive Network.resnet50_block) in
  let h = Fuse.Chain.group_hash arch g in
  check_int "16 hex chars" 16 (String.length h);
  String.iter
    (fun c ->
      check_bool "hex digit" true
        (match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
    h;
  (* name-blind: renaming members does not move the content address *)
  let renamed =
    { g with
      Fuse.Chain.members =
        List.map
          (fun (l : Layer.t) ->
            Layer.create ~name:"x" ~stride:l.Layer.stride ~r:l.Layer.r ~s:l.Layer.s
              ~p:l.Layer.p ~q:l.Layer.q ~c:l.Layer.c ~k:l.Layer.k ~n:l.Layer.n ())
          g.Fuse.Chain.members }
  in
  check_bool "name-blind" true (Fuse.Chain.group_hash arch renamed = h);
  let shrunk = { g with Fuse.Chain.members = [ bn1; bn2 ] } in
  check_bool "shape-sensitive" false (Fuse.Chain.group_hash arch shrunk = h)

let test_derive_resnet50 () =
  let groups = Fuse.Chain.derive Network.resnet50 in
  check_int "twelve distinct chains" 12 (List.length groups);
  check_int "32 of 54 instances grouped" 32 (Fuse.Chain.grouped_instances groups)

(* ---- the fusion certifier --------------------------------------------- *)

let block_group = List.hd (Fuse.Chain.derive Network.resnet50_block)

(* the planner's own certified claim for the block chain *)
let honest_claim () =
  match (Fuse.Plan.plan_group arch block_group).Fuse.Plan.g_outcome with
  | Fuse.Plan.Independent fs ->
    Alcotest.failf "block chain failed to fuse: %s"
      (String.concat "; " (List.map Robust.Failure.to_string fs))
  | Fuse.Plan.Fused f ->
    let keep = Array.of_list f.Fuse.Plan.f_keep in
    let wres = Array.of_list f.Fuse.Plan.f_wres in
    { Certify.Fuse_cert.f_arch = arch;
      f_members =
        List.mapi
          (fun j l ->
            { Certify.Fuse_cert.m_layer = l;
              m_keep_output = (j < Array.length keep && keep.(j));
              m_weights_resident = wres.(j) })
          block_group.Fuse.Chain.members;
      f_bands = f.Fuse.Plan.f_bands;
      f_gb_reserve_bytes = f.Fuse.Plan.f_gb_reserve_bytes;
      f_peak_gb_bytes = f.Fuse.Plan.f_peak_gb_bytes;
      f_dram_words = f.Fuse.Plan.f_dram_words }

let test_cert_accepts_honest () =
  certified "planner claim" (Certify.Fuse_cert.check (honest_claim ()))

let test_cert_rejects_peak_lie () =
  let c = honest_claim () in
  violated_on "understated peak" "fuse gb peak"
    (Certify.Fuse_cert.check
       { c with Certify.Fuse_cert.f_peak_gb_bytes = c.Certify.Fuse_cert.f_peak_gb_bytes - 1 });
  violated_on "overstated peak" "fuse gb peak"
    (Certify.Fuse_cert.check
       { c with Certify.Fuse_cert.f_peak_gb_bytes = c.Certify.Fuse_cert.f_peak_gb_bytes + 1 })

let test_cert_rejects_dram_lie () =
  let c = honest_claim () in
  violated_on "understated DRAM" "fuse dram accounting"
    (Certify.Fuse_cert.check
       { c with Certify.Fuse_cert.f_dram_words = c.Certify.Fuse_cert.f_dram_words - 1 })

let test_cert_rejects_buffer_overflow () =
  (* one band with every edge kept: both 56x56x64 intermediates resident at
     once blows the global buffer ledger *)
  let c = honest_claim () in
  let members =
    List.mapi
      (fun j (m : Certify.Fuse_cert.member) ->
        { m with Certify.Fuse_cert.m_keep_output = j < 2 })
      c.Certify.Fuse_cert.f_members
  in
  violated_on "keep-all at one band" "fuse gb ledger"
    (Certify.Fuse_cert.check
       { c with Certify.Fuse_cert.f_members = members; f_bands = 1 })

let test_cert_rejects_bad_propagation () =
  (* a chain whose middle member does not consume its producer's tiles is
     not a chain at all: the certifier rejects it structurally *)
  let c = honest_claim () in
  let swapped =
    match c.Certify.Fuse_cert.f_members with
    | [ a; b; z ] -> [ a; z; b ]
    | _ -> Alcotest.fail "expected 3 members"
  in
  violated_on "broken producer->consumer shapes" "fuse adjacency"
    (Certify.Fuse_cert.check { c with Certify.Fuse_cert.f_members = swapped })

let test_cert_rejects_kept_final_output () =
  let c = honest_claim () in
  let members =
    List.mapi
      (fun j (m : Certify.Fuse_cert.member) ->
        if j = List.length c.Certify.Fuse_cert.f_members - 1 then
          { m with Certify.Fuse_cert.m_keep_output = true }
        else m)
      c.Certify.Fuse_cert.f_members
  in
  violated_on "network output never leaves chip" "fuse last output spilled"
    (Certify.Fuse_cert.check { c with Certify.Fuse_cert.f_members = members })

let test_cert_rejects_degenerate () =
  let c = honest_claim () in
  violated_on "zero bands" "fuse band count"
    (Certify.Fuse_cert.check { c with Certify.Fuse_cert.f_bands = 0 });
  violated_on "single member" "fuse group size"
    (Certify.Fuse_cert.check
       { c with
         Certify.Fuse_cert.f_members = [ List.hd c.Certify.Fuse_cert.f_members ] })

(* ---- the planner ------------------------------------------------------ *)

let test_plan_block_fuses () =
  let gp = Fuse.Plan.plan_group arch block_group in
  (match gp.Fuse.Plan.g_outcome with
   | Fuse.Plan.Fused f ->
     check_bool "fused beats independent" true
       (f.Fuse.Plan.f_dram_words < gp.Fuse.Plan.g_independent_words);
     check_bool "positive savings" true (Fuse.Plan.group_savings gp > 0)
   | Fuse.Plan.Independent fs ->
     Alcotest.failf "expected fused, got independent: %s"
       (String.concat "; " (List.map Robust.Failure.to_string fs)))

let test_plan_fault_degrades () =
  (* a certain fault at the planning site degrades the group to the
     independent baseline with Injected provenance — never a crash *)
  let gp =
    Robust.Fault.with_faults ~rate:1.0 ~only:[ "fuse.plan" ] 7 (fun () ->
        Fuse.Plan.plan_group arch block_group)
  in
  (match gp.Fuse.Plan.g_outcome with
   | Fuse.Plan.Fused _ -> Alcotest.fail "fused through an injected fault"
   | Fuse.Plan.Independent fs ->
     check_bool "Injected provenance" true
       (List.exists Robust.Failure.is_injected fs));
  check_int "no savings when degraded" 0 (Fuse.Plan.group_savings gp)

let test_plan_network_rollup () =
  let plan = Fuse.Plan.plan_network ~mode:Fuse.Plan.Chains arch Network.resnet50_block in
  check_int "one group" 1 (List.length plan.Fuse.Plan.p_groups);
  check_int "instances" 3 plan.Fuse.Plan.p_instances;
  check_int "grouped" 3 plan.Fuse.Plan.p_grouped_instances;
  check_bool "network fused total below independent" true
    (plan.Fuse.Plan.p_fused_dram_words < plan.Fuse.Plan.p_independent_dram_words);
  (* Auto keeps a strictly beneficial fusion *)
  let auto = Fuse.Plan.plan_network ~mode:Fuse.Plan.Auto arch Network.resnet50_block in
  check_bool "auto keeps beneficial fusion" true
    (match (List.hd auto.Fuse.Plan.p_groups).Fuse.Plan.g_outcome with
     | Fuse.Plan.Fused _ -> true
     | Fuse.Plan.Independent _ -> false)

(* ---- --fuse=off identity with the per-layer service ------------------- *)

let serve_config ?(strategy = Cosa.Heuristic) ?jobs () =
  Serve.Service.config ~strategy ~node_limit:2_000 ~time_limit:60. ?jobs arch

(* equality on everything deterministic (mappings, objectives, totals,
   failure provenance) — wall-clock fields excluded *)
let same_report (a : Serve.Service.report) (b : Serve.Service.report) =
  let same_layer (x : Serve.Service.layer_report) (y : Serve.Service.layer_report) =
    Layer.key x.Serve.Service.layer = Layer.key y.Serve.Service.layer
    && x.Serve.Service.repeats = y.Serve.Service.repeats
    && x.Serve.Service.latency = y.Serve.Service.latency
    && x.Serve.Service.energy_pj = y.Serve.Service.energy_pj
    &&
    match (x.Serve.Service.served, y.Serve.Service.served) with
    | Ok sx, Ok sy ->
      sx.Serve.Service.mapping = sy.Serve.Service.mapping
      && sx.Serve.Service.objective = sy.Serve.Service.objective
      && sx.Serve.Service.verdict = sy.Serve.Service.verdict
      && sx.Serve.Service.fallback_chain = sy.Serve.Service.fallback_chain
    | Error fx, Error fy -> fx = fy
    | _ -> false
  in
  a.Serve.Service.network_name = b.Serve.Service.network_name
  && a.Serve.Service.instances = b.Serve.Service.instances
  && a.Serve.Service.distinct = b.Serve.Service.distinct
  && a.Serve.Service.failed = b.Serve.Service.failed
  && a.Serve.Service.total_latency = b.Serve.Service.total_latency
  && a.Serve.Service.total_energy_pj = b.Serve.Service.total_energy_pj
  && List.length a.Serve.Service.layers = List.length b.Serve.Service.layers
  && List.for_all2 same_layer a.Serve.Service.layers b.Serve.Service.layers

let test_fuse_off_identity () =
  (* same request through both entry points, including the solver's node
     telemetry: --fuse=off must be indistinguishable from the plain path *)
  Telemetry.Sink.set Telemetry.Sink.Memory;
  Fun.protect ~finally:(fun () -> Telemetry.Sink.set Telemetry.Sink.Null)
  @@ fun () ->
  let cfg = serve_config ~strategy:Cosa.Two_stage () in
  Telemetry.Metrics.reset ();
  let plain = Serve.Service.schedule_network cfg small_chain in
  let snap_plain = Telemetry.Metrics.snapshot () in
  Telemetry.Metrics.reset ();
  let fused =
    Serve.Service.schedule_network_fused ~fuse:Serve.Service.Fuse_off cfg small_chain
  in
  let snap_off = Telemetry.Metrics.snapshot () in
  check_bool "fusion absent" true (fused.Serve.Service.fusion = None);
  check_bool "reports identical" true (same_report plain fused.Serve.Service.base);
  List.iter
    (fun counter ->
      check_int
        (Printf.sprintf "telemetry %s identical" counter)
        (Telemetry.Metrics.counter_value snap_plain counter)
        (Telemetry.Metrics.counter_value snap_off counter))
    [ "bb.nodes"; "bb.incumbents"; "fuse.groups"; "fuse.mip_solves" ]

let test_fuse_chains_same_base () =
  (* fusion never perturbs the per-layer answers it annotates *)
  let cfg = serve_config () in
  let plain = Serve.Service.schedule_network cfg small_chain in
  let fused =
    Serve.Service.schedule_network_fused ~fuse:Serve.Service.Fuse_chains cfg
      small_chain
  in
  check_bool "fusion present" true (fused.Serve.Service.fusion <> None);
  check_bool "base report unchanged" true (same_report plain fused.Serve.Service.base)

let prop_fuse_off_identity =
  QCheck.Test.make ~name:"--fuse=off identical to per-layer service at any jobs"
    ~count:12
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 1)))
    (fun (jobs, which) ->
      let net = if which = 0 then small_chain else Network.resnet50_block in
      let cfg = serve_config ~jobs () in
      let plain = Serve.Service.schedule_network cfg net in
      let fused =
        Serve.Service.schedule_network_fused ~fuse:Serve.Service.Fuse_off cfg net
      in
      fused.Serve.Service.fusion = None
      && same_report plain fused.Serve.Service.base)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "fuse",
    [
      Alcotest.test_case "adjacency" `Quick test_adjacent;
      Alcotest.test_case "derive: bottleneck block" `Quick test_derive_block;
      Alcotest.test_case "derive: max_group cuts runs" `Quick test_derive_max_group;
      Alcotest.test_case "derive: dedup with counts" `Quick test_derive_dedup;
      Alcotest.test_case "derive: no fusable pair" `Quick test_derive_no_chain;
      Alcotest.test_case "group hash: stable content address" `Quick test_group_hash;
      Alcotest.test_case "derive: ResNet-50 chains" `Quick test_derive_resnet50;
      Alcotest.test_case "cert: honest claim accepted" `Quick test_cert_accepts_honest;
      Alcotest.test_case "cert: peak lie rejected" `Quick test_cert_rejects_peak_lie;
      Alcotest.test_case "cert: understated DRAM rejected" `Quick
        test_cert_rejects_dram_lie;
      Alcotest.test_case "cert: buffer overflow rejected" `Quick
        test_cert_rejects_buffer_overflow;
      Alcotest.test_case "cert: broken tile propagation rejected" `Quick
        test_cert_rejects_bad_propagation;
      Alcotest.test_case "cert: kept final output rejected" `Quick
        test_cert_rejects_kept_final_output;
      Alcotest.test_case "cert: degenerate claims rejected" `Quick
        test_cert_rejects_degenerate;
      Alcotest.test_case "plan: block chain fuses and saves" `Quick
        test_plan_block_fuses;
      Alcotest.test_case "plan: injected fault degrades typed" `Quick
        test_plan_fault_degrades;
      Alcotest.test_case "plan: network rollup and Auto" `Quick
        test_plan_network_rollup;
      Alcotest.test_case "serve: --fuse=off identity (+ telemetry)" `Quick
        test_fuse_off_identity;
      Alcotest.test_case "serve: fusion leaves base report alone" `Quick
        test_fuse_chains_same_base;
      qc prop_fuse_off_identity;
    ] )
