(* Tests for the telemetry subsystem: atomic metrics, the span ring and
   its Chrome export, the zero-cost-when-disabled contract, race-free
   recording under the domain pool, and non-interference with solver
   determinism. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module M = Telemetry.Metrics
module T = Telemetry.Trace

(* Every test arms a sink and must leave the process-wide default (Null)
   behind, even on assertion failure — other suites assume telemetry off. *)
let with_sink sink f =
  Telemetry.Sink.set sink;
  M.reset ();
  T.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.Sink.set Telemetry.Sink.Null) f

(* ---- metrics ---------------------------------------------------------- *)

let test_counter_basic () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  let c = M.counter "test.counter" in
  check_int "registered at zero" 0 (M.counter_value (M.snapshot ()) "test.counter");
  M.incr c;
  M.incr c;
  M.add c 40;
  check_int "incr + add accumulate" 42 (M.counter_value (M.snapshot ()) "test.counter");
  (* find-or-create: the same name is the same counter *)
  M.incr (M.counter "test.counter");
  check_int "same name, same cell" 43 (M.counter_value (M.snapshot ()) "test.counter");
  check_int "absent counter reads 0" 0 (M.counter_value (M.snapshot ()) "test.absent")

let test_disabled_is_noop () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  let c = M.counter "test.gated" in
  Telemetry.Sink.set Telemetry.Sink.Null;
  M.incr c;
  M.observe (M.histogram "test.gated_hist") 1.0;
  ignore (T.begin_span "gated");
  T.instant "gated";
  Telemetry.Sink.set Telemetry.Sink.Memory;
  check_int "counter untouched while disabled" 0
    (M.counter_value (M.snapshot ()) "test.gated");
  check_bool "no events recorded while disabled" true (T.events () = []);
  let snap = M.snapshot () in
  check_int "histogram untouched while disabled" 0
    (List.assoc "test.gated_hist" snap.M.histograms).M.count

let test_histogram_buckets () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  let h = M.histogram ~buckets:[| 1.; 10.; 100. |] "test.hist" in
  List.iter (M.observe h) [ 0.5; 1.0; 3.; 50.; 1e6 ];
  let s = List.assoc "test.hist" (M.snapshot ()).M.histograms in
  check_int "sample count" 5 s.M.count;
  Alcotest.(check (float 1e-9)) "sum" (0.5 +. 1.0 +. 3. +. 50. +. 1e6) s.M.sum;
  (* bounds get an implicit overflow bucket appended *)
  check_int "bucket array length" 4 (Array.length s.M.counts);
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1; 1 |] s.M.counts;
  check_bool "overflow bound is inf" true (s.M.bounds.(3) = infinity);
  (* the bucket estimate is the containing bucket's upper bound *)
  Alcotest.(check (float 1e-9)) "median estimate" 10. (M.hist_quantile s 0.5)

let test_snapshot_reset () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  let c = M.counter "test.reset_c" in
  let h = M.histogram "test.reset_h" in
  M.add c 7;
  M.observe h 0.5;
  M.set_gauge (M.gauge "test.reset_g") 3.5;
  M.reset ();
  let snap = M.snapshot () in
  (* registrations survive a reset; only values are cleared *)
  check_int "counter re-zeroed" 0 (M.counter_value snap "test.reset_c");
  check_bool "counter still listed" true (List.mem_assoc "test.reset_c" snap.M.counters);
  check_int "histogram re-zeroed" 0 (List.assoc "test.reset_h" snap.M.histograms).M.count;
  Alcotest.(check (float 0.)) "gauge re-zeroed" 0. (List.assoc "test.reset_g" snap.M.gauges);
  M.incr c;
  check_int "cell usable after reset" 1 (M.counter_value (M.snapshot ()) "test.reset_c")

(* ---- tracing ---------------------------------------------------------- *)

let test_span_nesting_balance () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  T.with_span ~cat:"outer" "a" (fun () ->
      T.with_span ~cat:"inner" "b" (fun () -> ());
      T.instant ~args:[ ("k", "v") ] "tick");
  let evs = T.events () in
  check_int "three events" 3 (List.length evs);
  (* spans are recorded as complete events when they end, so the export is
     balanced by construction: every span event carries its own duration *)
  List.iter
    (fun (e : T.event) ->
      check_bool ("non-negative ts: " ^ e.T.name) true (e.T.ts >= 0.);
      check_bool ("non-negative dur: " ^ e.T.name) true (e.T.dur >= 0.))
    evs;
  let span_events = List.filter (fun (e : T.event) -> e.T.complete) evs in
  check_int "two complete spans" 2 (List.length span_events);
  let outer = List.find (fun (e : T.event) -> e.T.name = "a") evs in
  let inner = List.find (fun (e : T.event) -> e.T.name = "b") evs in
  check_bool "inner nests inside outer" true
    (inner.T.ts >= outer.T.ts
    && inner.T.ts +. inner.T.dur <= outer.T.ts +. outer.T.dur +. 1e-9);
  (* Chrome export: one JSON object, one "X" record per span, one "i" *)
  let chrome = T.export_chrome () in
  let count_sub sub =
    let n = ref 0 and i = ref 0 in
    let len = String.length sub in
    while !i + len <= String.length chrome do
      if String.sub chrome !i len = sub then incr n;
      incr i
    done;
    !n
  in
  check_bool "has traceEvents array" true (count_sub "\"traceEvents\"" = 1);
  check_int "balanced complete events" 2 (count_sub "\"ph\":\"X\"");
  check_int "one instant" 1 (count_sub "\"ph\":\"i\"");
  check_bool "args exported" true (count_sub "\"k\":\"v\"" = 1)

let test_span_exception_safety () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  (try T.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  check_int "span still recorded on raise" 1 (List.length (T.events ()))

let test_profile_aggregates () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  for _ = 1 to 5 do
    T.with_span "p.work" (fun () -> ())
  done;
  (match List.find_opt (fun (n, _, _) -> n = "p.work") (T.profile_entries ()) with
   | Some (_, count, total) ->
     check_int "profile count" 5 count;
     check_bool "profile total >= 0" true (total >= 0.)
   | None -> Alcotest.fail "p.work missing from profile");
  check_bool "summary renders" true (String.length (T.profile_summary ()) > 0)

let test_ring_overwrite () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  (* the ring keeps the newest [capacity] events; the recorded total and
     the profile aggregates keep counting past the overwrite *)
  T.set_capacity 1024;
  Fun.protect ~finally:(fun () -> T.set_capacity 65536) @@ fun () ->
  for _ = 1 to 1500 do
    T.with_span "r.spin" (fun () -> ())
  done;
  check_int "ring clamps to capacity" 1024 (List.length (T.events ()));
  check_int "recorded counts overwrites" 1500 (T.recorded ());
  match List.find_opt (fun (n, _, _) -> n = "r.spin") (T.profile_entries ()) with
  | Some (_, count, _) -> check_int "profile survives overwrite" 1500 count
  | None -> Alcotest.fail "r.spin missing from profile"

(* ---- domain-safety and non-interference ------------------------------- *)

let test_pool_metrics_race_free () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  let n = 200 in
  let results =
    Serve.Pool.run ~jobs:4 (fun i -> i * i) (List.init n (fun i -> i))
  in
  check_int "all tasks returned" n (List.length results);
  let snap = M.snapshot () in
  (* atomic recording: 4 domains recording concurrently lose no ticks *)
  check_int "pool task counter exact" n (M.counter_value snap "serve.pool.tasks");
  check_int "queue-wait samples exact" n
    (List.assoc "serve.pool.queue_wait_s" snap.M.histograms).M.count;
  check_int "one span per task" n (T.recorded ())

let test_determinism_with_telemetry () =
  (* telemetry observes the solver, it must never steer it: a node-bound
     schedule is byte-identical with collection off and with every
     observability surface armed (sink + event log + exports) *)
  let arch = Spec.baseline in
  let layer = Layer.create ~name:"tel_det" ~r:3 ~s:3 ~p:4 ~q:4 ~c:4 ~k:8 ~n:1 () in
  let solve () =
    Mapping_io.to_string
      (Cosa.schedule ~strategy:Cosa.Two_stage ~node_limit:2_000 ~time_limit:60. arch
         layer)
        .Cosa.mapping
  in
  Telemetry.Sink.set Telemetry.Sink.Null;
  Telemetry.Log.set Telemetry.Log.Null;
  let off = solve () in
  let on =
    with_sink Telemetry.Sink.Memory (fun () ->
        Telemetry.Log.set ~level:Telemetry.Log.Debug Telemetry.Log.Memory;
        Fun.protect
          ~finally:(fun () -> Telemetry.Log.set Telemetry.Log.Null)
          (fun () ->
            let r = solve () in
            (* exports are pure readers: rendering them must not matter *)
            ignore (Telemetry.Export.prometheus (M.snapshot ()));
            ignore (Telemetry.Export.metrics_json (M.snapshot ()));
            r))
  in
  Alcotest.(check string) "schedule identical with telemetry on" off on

(* ---- structured event log --------------------------------------------- *)

let with_log ?level ?rate_limit output f =
  Telemetry.Log.set ?level ?rate_limit output;
  Fun.protect ~finally:(fun () -> Telemetry.Log.set Telemetry.Log.Null) f

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
  at 0

let test_log_disabled_noop () =
  Telemetry.Log.set Telemetry.Log.Null;
  check_bool "disabled by default" false (Telemetry.Log.enabled ());
  Telemetry.Log.info "log.gated" [ ("k", "v") ];
  Telemetry.Log.error "log.gated" [];
  check_bool "nothing captured while disabled" true (Telemetry.Log.captured () = [])

let test_log_jsonl_and_levels () =
  with_log ~level:Telemetry.Log.Info Telemetry.Log.Memory @@ fun () ->
  check_bool "armed" true (Telemetry.Log.enabled ());
  Telemetry.Log.debug "log.dropped" [];
  Telemetry.Log.info "log.line" [ ("key", "value"); ("quote", "a\"b") ];
  Telemetry.Log.warn "log.warned" [];
  (match Telemetry.Log.captured () with
   | [ l1; l2 ] ->
     check_bool "JSONL object" true
       (String.length l1 > 2 && l1.[0] = '{' && l1.[String.length l1 - 1] = '}');
     check_bool "timestamp" true (contains l1 "\"ts\":");
     check_bool "level" true (contains l1 "\"level\":\"info\"");
     check_bool "event name" true (contains l1 "\"event\":\"log.line\"");
     check_bool "fields" true (contains l1 "\"key\":\"value\"");
     check_bool "fields escaped" true (contains l1 "\"quote\":\"a\\\"b\"");
     check_bool "below-level line dropped" false (contains l1 "log.dropped");
     check_bool "warn emitted" true (contains l2 "\"level\":\"warn\"")
   | lines ->
     Alcotest.fail
       (Printf.sprintf "expected 2 captured lines, got %d" (List.length lines)));
  (* the ambient request binding tags lines automatically *)
  Telemetry.Trace.with_request ~id:0xabcL ~hop:2 (fun () ->
      Telemetry.Log.info "log.tagged" []);
  let last = List.hd (List.rev (Telemetry.Log.captured ())) in
  check_bool "req tag" true
    (contains last ("\"req\":\"" ^ Telemetry.Trace.request_id_hex 0xabcL ^ "\""));
  check_bool "hop tag" true (contains last "\"hop\":2");
  (* level parsing used by the CLI flag *)
  check_bool "level_of_string" true
    (Telemetry.Log.level_of_string "warn" = Some Telemetry.Log.Warn
    && Telemetry.Log.level_of_string "bogus" = None)

let test_log_rate_limit () =
  with_log ~rate_limit:(2, 100.) Telemetry.Log.Memory @@ fun () ->
  for i = 1 to 20 do
    Telemetry.Log.info "log.storm" [ ("i", string_of_int i) ]
  done;
  let burst = List.length (Telemetry.Log.captured ()) in
  check_bool "storm clamped to around the burst" true (burst <= 5);
  check_bool "drops counted" true (Telemetry.Log.suppressed_total () >= 15);
  (* after a refill, the next line surfaces the suppressed count *)
  Thread.delay 0.05;
  Telemetry.Log.info "log.storm" [];
  let last = List.hd (List.rev (Telemetry.Log.captured ())) in
  check_bool "suppression visible in-stream" true (contains last "\"suppressed\":");
  (* an unrelated event name has its own bucket *)
  Telemetry.Log.info "log.calm" [];
  check_bool "independent buckets" true
    (List.exists
       (fun l -> contains l "log.calm" && not (contains l "\"suppressed\""))
       (Telemetry.Log.captured ()))

(* ---- exposition formats ------------------------------------------------ *)

let test_export_prometheus () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  M.add (M.counter "exp.requests-total") 3;
  M.set_gauge (M.gauge "exp.depth") 2.5;
  let h = M.histogram ~buckets:[| 0.1; 1. |] "exp.wait_s" in
  List.iter (M.observe h) [ 0.05; 0.5; 5. ];
  let text = Telemetry.Export.prometheus (M.snapshot ()) in
  check_bool "counter typed" true (contains text "# TYPE cosa_exp_requests_total counter");
  check_bool "counter value" true (contains text "cosa_exp_requests_total 3");
  check_bool "gauge" true (contains text "cosa_exp_depth 2.5");
  check_bool "histogram typed" true (contains text "# TYPE cosa_exp_wait_s histogram");
  (* buckets are cumulative and end at +Inf = count *)
  check_bool "le=0.1" true (contains text "cosa_exp_wait_s_bucket{le=\"0.1\"} 1");
  check_bool "le=1" true (contains text "cosa_exp_wait_s_bucket{le=\"1\"} 2");
  check_bool "le=+Inf" true (contains text "cosa_exp_wait_s_bucket{le=\"+Inf\"} 3");
  check_bool "count" true (contains text "cosa_exp_wait_s_count 3");
  check_bool "name mangling" true (not (contains text "exp.requests-total"));
  let js = Telemetry.Export.metrics_json (M.snapshot ()) in
  check_bool "json counters" true (contains js "\"exp.requests-total\":3");
  check_bool "json histogram count" true (contains js "\"count\":3")

(* ---- snapshot consistency under concurrent mutation (jobs=4) ---------- *)

let test_snapshot_concurrent () =
  with_sink Telemetry.Sink.Memory @@ fun () ->
  let c = M.counter "conc.ticks" in
  let h = M.histogram ~buckets:[| 0.5; 1.5; 2.5 |] "conc.obs" in
  let per_domain = 20_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              M.incr c;
              M.observe h (float_of_int ((d + i) mod 4))
            done))
  in
  (* read snapshots while all four domains are mutating: counters must be
     monotone across reads and histograms never torn (the bucket writes
     land before the count, so Σbuckets >= count in every snapshot) *)
  let prev = ref 0 in
  for _ = 1 to 50 do
    let snap = M.snapshot () in
    let v = M.counter_value snap "conc.ticks" in
    check_bool "counter monotone under races" true (v >= !prev);
    prev := v;
    let hs = List.assoc "conc.obs" snap.M.histograms in
    let bucket_sum = Array.fold_left ( + ) 0 hs.M.counts in
    check_bool "histogram never torn (sum buckets >= count)" true
      (bucket_sum >= hs.M.count)
  done;
  List.iter Domain.join domains;
  let snap = M.snapshot () in
  check_int "no tick lost" (4 * per_domain) (M.counter_value snap "conc.ticks");
  let hs = List.assoc "conc.obs" snap.M.histograms in
  check_int "no observation lost" (4 * per_domain) hs.M.count;
  check_int "buckets settle to the count" hs.M.count
    (Array.fold_left ( + ) 0 hs.M.counts)

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basic;
      Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "snapshot reset" `Quick test_snapshot_reset;
      Alcotest.test_case "span nesting balance" `Quick test_span_nesting_balance;
      Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
      Alcotest.test_case "profile aggregates" `Quick test_profile_aggregates;
      Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
      Alcotest.test_case "pool metrics race-free" `Quick test_pool_metrics_race_free;
      Alcotest.test_case "determinism with telemetry" `Quick test_determinism_with_telemetry;
      Alcotest.test_case "log disabled is no-op" `Quick test_log_disabled_noop;
      Alcotest.test_case "log JSONL shape and levels" `Quick test_log_jsonl_and_levels;
      Alcotest.test_case "log rate limiting" `Quick test_log_rate_limit;
      Alcotest.test_case "prometheus exposition" `Quick test_export_prometheus;
      Alcotest.test_case "snapshot under concurrent mutation" `Quick test_snapshot_concurrent;
    ] )
