(* Quickstart: schedule one ResNet-50 layer on the baseline accelerator
   with CoSA and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 0. Turn telemetry on. It is off (and free) by default; the Memory
     sink records counters and spans in-process so we can print a summary
     of what the solver did at the end. *)
  Telemetry.Sink.set Telemetry.Sink.Memory;

  (* 1. Pick a workload: a 3x3 convolution from ResNet-50 with 256 input
     and output channels and a 14x14 output (the paper's Fig. 1 layer). *)
  let layer = Zoo.find "3_14_256_256_1" in
  Printf.printf "Scheduling %s\n\n" (Layer.to_string layer);

  (* 2. Pick an architecture: the Table V Simba-like baseline (4x4 PEs,
     64 MACs each, multi-level scratchpads, mesh NoC). *)
  let arch = Spec.baseline in
  print_string (Spec.to_string arch);

  (* 3. One-shot scheduling: CoSA formulates a MIP and solves it — no
     iterative search, no simulator in the loop. *)
  let result = Cosa.schedule arch layer in
  Printf.printf "\nCoSA solved in %.2f s (%d branch-and-bound nodes)\n\n"
    result.Cosa.solve_time result.Cosa.nodes;

  (* 4. The schedule is a concrete loop nest: tiling per memory level,
     loop order, and spatial mapping. *)
  print_string (Mapping.to_loop_nest arch result.Cosa.mapping);

  (* 5. Evaluate it with the Timeloop-class analytical model. *)
  let eval = Model.evaluate arch result.Cosa.mapping in
  Printf.printf "\n%s" (Model.summary arch eval);

  (* 6. And with the cycle-level NoC simulator, which also sees congestion. *)
  let sim = Noc_sim.simulate arch result.Cosa.mapping in
  Printf.printf "\nNoC simulator: %.0f cycles (%d packets, %d flit-hops)\n"
    sim.Noc_sim.latency sim.Noc_sim.packets sim.Noc_sim.flit_hops;

  (* 7. What did all of that cost? The telemetry counters saw every
     branch-and-bound node, simplex iteration, and model evaluation the
     run performed. *)
  let snap = Telemetry.Metrics.snapshot () in
  let v = Telemetry.Metrics.counter_value snap in
  let tab = Prim.Texttab.create [ "telemetry counter"; "value" ] in
  List.iter
    (fun name -> Prim.Texttab.add_row tab [ name; string_of_int (v name) ])
    [ "bb.nodes"; "simplex.solves"; "simplex.phase1_iterations";
      "simplex.phase2_iterations"; "model.evaluations"; "dram.requests" ];
  Printf.printf "\n%s" (Prim.Texttab.render tab)
