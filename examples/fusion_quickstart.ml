(* Cross-layer fusion quickstart.

   Derives producer->consumer chains from the two fusion-candidate
   networks (the ResNet-C deep stem and a ResNet-50 bottleneck block),
   plans each group with the MIP-backed fusion planner, and prints the
   certified fused-vs-independent off-chip traffic. The same chains are
   reachable from the CLI:

     cosa_cli batch --network resnet50-block --fuse=chains *)

let () =
  let arch = Spec.baseline in
  List.iter
    (fun net ->
      Printf.printf "=== %s ===\n" net.Network.nname;
      let groups = Fuse.Chain.derive net in
      List.iter
        (fun g -> Printf.printf "chain %s  (key %s)\n" (Fuse.Chain.group_to_string g)
            (Fuse.Chain.group_hash arch g))
        groups;
      let plan = Fuse.Plan.plan_network ~mode:Fuse.Plan.Chains arch net in
      print_string (Fuse.Plan.network_plan_to_string plan);
      print_newline ())
    [ Network.resnet50_stem; Network.resnet50_block; Network.resnet50 ]
