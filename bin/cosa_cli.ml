(* Command-line driver: schedule layers, run paper experiments, inspect
   architectures and workloads, and run the cycle-level NoC simulator. *)

open Cmdliner

let arch_of_name name =
  match List.assoc_opt name Spec.variants with
  | Some a -> a
  | None ->
    Printf.eprintf "unknown architecture %S (available: %s)\n" name
      (String.concat ", " (List.map fst Spec.variants));
    exit 1

let arch_arg =
  let doc = "Target architecture (baseline, pe64, big_sram)." in
  Arg.(value & opt string "baseline" & info [ "a"; "arch" ] ~docv:"ARCH" ~doc)

let layer_arg =
  let doc = "Layer name (see `cosa_cli list layers`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LAYER" ~doc)

let find_layer name =
  try Zoo.find name
  with Not_found ->
    Printf.eprintf "unknown layer %S; try `cosa_cli list layers`\n" name;
    exit 1

(* Shared robustness flags: a per-call wall-clock budget and the
   deterministic fault-injection harness (for soak/chaos testing from the
   command line). *)
let time_limit_arg =
  Arg.(value & opt float 4. & info [ "time-limit" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget for the whole scheduling call; enforced down to \
               the simplex pivot loop, degrading through the fallback ladder if \
               it expires.")

let node_limit_arg =
  Arg.(value & opt int 50_000 & info [ "node-limit" ] ~docv:"NODES"
         ~doc:"Per-attempt branch-and-bound node budget. Unlike --time-limit, \
               node-bound termination is deterministic: make $(docv) the \
               binding limit when byte-reproducible schedules matter.")

let fault_seed_arg =
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED"
         ~doc:"Arm the deterministic fault-injection harness with $(docv). The \
               same seed fires the same faults at the same sites every run.")

let fault_rate_arg =
  Arg.(value & opt float 0.02 & info [ "fault-rate" ] ~docv:"RATE"
         ~doc:"Per-site-visit fault probability when --fault-seed is given.")

let warm_start_arg =
  let on_off = Arg.enum [ ("on", true); ("off", false) ] in
  Arg.(value & opt on_off true & info [ "warm-start" ] ~docv:"on|off"
         ~doc:"LP warm starting inside branch-and-bound: child nodes reoptimize \
               from the parent's simplex basis via dual simplex ($(b,on), \
               default) instead of solving cold. Changes how fast nodes solve, \
               never which schedule wins; $(b,off) exists for benchmarking and \
               bisection.")

let refactor_interval_arg =
  Arg.(value & opt (some int) None & info [ "refactor-interval" ] ~docv:"N"
         ~doc:"Pin the simplex to a fixed basis-refactorization cadence (every                $(docv) eta updates) instead of the default stability triggers.                Changes wall time only, never the schedule; exists for                deterministic A/B bisection of suspected numerical drift.")

let certify_arg =
  let certify_conv =
    Arg.enum [ ("off", Cosa.Off); ("warn", Cosa.Warn); ("strict", Cosa.Strict) ]
  in
  Arg.(value & opt certify_conv Cosa.Warn & info [ "certify" ] ~docv:"MODE"
         ~doc:"Exact-arithmetic certification of returned schedules: $(b,off) \
               trusts the float pipeline, $(b,warn) (default) certifies and \
               reports the verdict, $(b,strict) rejects any rung whose \
               certificate fails and descends the fallback ladder.")

let print_certification = function
  | Cosa.Cert_skipped -> ()
  | v -> Printf.printf "certification: %s\n" (Cosa.certification_to_string v)

(* Shared observability flags. Telemetry defaults to the Null sink —
   recording primitives are compiled in everywhere but reduce to one
   atomic load unless one of these flags arms a sink. *)
let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON trace of the run to $(docv). \
               Load it in chrome://tracing or https://ui.perfetto.dev; spans \
               are grouped per OCaml domain, so --jobs N shows N solver lanes.")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"After the command finishes, print the process-wide telemetry \
               counters, gauges, and latency histograms.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"After the command finishes, print an aggregate span profile \
               (call count and total/mean wall time per span name).")

let trace_ring_arg =
  Arg.(value & opt (some int) None & info [ "trace-ring" ] ~docv:"N"
         ~doc:"Trace event-ring capacity (default 65536, min 1024). The ring \
               overwrites oldest-first when full, so a long-running daemon \
               keeps the most recent $(docv) events.")

let log_arg =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
         ~doc:"Append the structured JSONL event log to $(docv) ($(b,-) for \
               stderr): one JSON object per line, leveled and rate-limited, \
               request-id tagged. Off by default (zero cost).")

let log_level_arg =
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL"
         ~doc:"Minimum event-log level: debug, info, warn, or error.")

let arm_event_log log_file log_level =
  match log_file with
  | None -> ()
  | Some target ->
    let level =
      match Telemetry.Log.level_of_string log_level with
      | Some l -> l
      | None ->
        Printf.eprintf "--log-level must be debug|info|warn|error (got %s)\n" log_level;
        exit 2
    in
    let output =
      if target = "-" then Telemetry.Log.Stderr else Telemetry.Log.File target
    in
    Telemetry.Log.set ~level output

(* Arm the sink before [f], flush/report after — including on exit/exception
   paths, so a --trace of a run that dies still loads in the viewer. *)
let with_telemetry ?ring trace metrics profile f =
  (match ring with Some n -> Telemetry.Trace.set_capacity n | None -> ());
  match (trace, metrics, profile) with
  | None, false, false -> f ()
  | _ ->
    (match trace with
     | Some path -> Telemetry.Sink.set (Telemetry.Sink.File path)
     | None -> Telemetry.Sink.set Telemetry.Sink.Memory);
    Telemetry.Metrics.reset ();
    Telemetry.Trace.reset ();
    let report () =
      (match trace with
       | Some path ->
         Telemetry.Trace.write_file path;
         Printf.printf "trace written to %s (%d events)\n" path
           (List.length (Telemetry.Trace.events ()))
       | None -> ());
      if metrics then print_string (Telemetry.Metrics.report ());
      if profile then print_string (Telemetry.Trace.profile_summary ())
    in
    Fun.protect ~finally:report f

let with_faults fault_seed fault_rate f =
  match fault_seed with
  | None -> f ()
  | Some seed ->
    if not (fault_rate >= 0. && fault_rate <= 1.) then begin
      Printf.eprintf "--fault-rate must be in [0, 1] (got %g)\n" fault_rate;
      exit 2
    end;
    Robust.Fault.with_faults ~rate:fault_rate seed (fun () ->
        let r = f () in
        Printf.printf "faults fired: %d\n" (Robust.Fault.fired_count ());
        List.iter
          (fun (site, visit) -> Printf.printf "  %s (visit %d)\n" site visit)
          (Robust.Fault.fired ());
        r)

let strategy_conv =
  Arg.enum
    [ ("auto", Cosa.Auto); ("joint", Cosa.Joint); ("two-stage", Cosa.Two_stage);
      ("heuristic", Cosa.Heuristic) ]

let strategy_arg =
  Arg.(value & opt strategy_conv Cosa.Auto & info [ "s"; "strategy" ] ~docv:"STRATEGY"
         ~doc:"Solver strategy: auto, joint, two-stage, or heuristic (skip the MIP \
               rungs; sampler only).")

(* cosa_cli schedule <layer> *)
let schedule_cmd =
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Also write the schedule to $(docv) (cosa_cli evaluate reads it back).")
  in
  let run arch_name layer_name strategy save node_limit time_limit fault_seed fault_rate
      certify warm_start refactor_interval trace metrics profile trace_ring =
    let arch = arch_of_name arch_name in
    let layer = find_layer layer_name in
    let r =
      with_telemetry ?ring:trace_ring trace metrics profile (fun () ->
          with_faults fault_seed fault_rate (fun () ->
              Cosa.schedule ~strategy ~node_limit ~time_limit ~certify ~warm_start
                ?refactor_interval arch layer))
    in
    (match save with
     | Some path ->
       Mapping_io.save path r.Cosa.mapping;
       Printf.printf "schedule written to %s\n" path
     | None -> ());
    let e = Model.evaluate arch r.Cosa.mapping in
    Printf.printf "layer: %s\narch: %s\n\n%s\n" (Layer.to_string layer) arch.Spec.aname
      (Mapping.to_loop_nest arch r.Cosa.mapping);
    Printf.printf "solver: %s in %.2fs (%d nodes), %s%s\n"
      (match r.Cosa.solver_status with
       | Milp.Bb.Optimal -> "optimal"
       | Milp.Bb.Feasible -> "feasible (limit hit)"
       | Milp.Bb.Infeasible -> "infeasible"
       | Milp.Bb.Unbounded -> "unbounded"
       | Milp.Bb.No_solution -> "no solution (fallback schedule)")
      r.Cosa.solve_time r.Cosa.nodes
      (Cosa.source_to_string r.Cosa.source)
      (if r.Cosa.repaired then ", capacity-repaired" else "");
    print_certification r.Cosa.certification;
    (match r.Cosa.fallback_chain with
     | [] -> ()
     | chain ->
       Printf.printf "fallbacks: %s\n"
         (String.concat " -> " (List.map Robust.Failure.to_string chain)));
    Printf.printf "objective: util=%.2f comp=%.2f traf=%.2f total=%.2f\n"
      r.Cosa.objective.Cosa.util r.Cosa.objective.Cosa.comp r.Cosa.objective.Cosa.traf
      r.Cosa.objective.Cosa.total;
    Printf.printf "model: latency=%.0f cycles, energy=%.4g pJ, PE util=%.1f%%\n"
      e.Model.latency e.Model.energy_pj (100. *. e.Model.pe_utilization)
  in
  Cmd.v (Cmd.info "schedule" ~doc:"Produce a CoSA schedule for a layer and report it.")
    Term.(const run $ arch_arg $ layer_arg $ strategy_arg $ save_arg $ node_limit_arg
          $ time_limit_arg $ fault_seed_arg $ fault_rate_arg $ certify_arg
          $ warm_start_arg $ refactor_interval_arg $ trace_arg $ metrics_arg
          $ profile_arg $ trace_ring_arg)

(* cosa_cli batch --network resnet50 --jobs 4 --cache-dir PATH *)
let batch_cmd =
  let network_arg =
    Arg.(value & opt string "resnet50" & info [ "n"; "network" ] ~docv:"NETWORK"
           ~doc:"Network to schedule (resnet50, resnext50; name matching is \
                 case/dash-insensitive).")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Solve cache misses on $(docv) OCaml domains. Results are \
                 deterministic: any $(docv) yields byte-identical schedules.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"PATH"
           ~doc:"Persist schedules under $(docv). Disk entries are \
                 trust-but-verify: each is re-certified in exact arithmetic \
                 before being served, and rejected entries fall through to a \
                 live solve.")
  in
  let cache_size_arg =
    Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"ENTRIES"
           ~doc:"In-memory LRU capacity (distinct schedules).")
  in
  let fuse_arg =
    let modes =
      [ ("off", Serve.Service.Fuse_off); ("chains", Serve.Service.Fuse_chains);
        ("auto", Serve.Service.Fuse_auto) ]
    in
    Arg.(value & opt (enum modes) Serve.Service.Fuse_off & info [ "fuse" ] ~docv:"MODE"
           ~doc:"Cross-layer fusion: $(b,off) (default) is the plain per-layer \
                 path, $(b,chains) fuses every derived producer-consumer chain \
                 whose plan certifies in exact arithmetic, $(b,auto) \
                 additionally requires the fused plan to beat the independent \
                 baseline. Fusion is a purely additive second stage: the \
                 per-layer schedules and cache keys are identical in every \
                 mode.")
  in
  let fuse_max_group_arg =
    Arg.(value & opt int 3 & info [ "fuse-max-group" ] ~docv:"N"
           ~doc:"Maximum members per fusion group (at least 2).")
  in
  let run arch_name network_name jobs cache_dir cache_size node_limit strategy time_limit
      certify warm_start fuse fuse_max_group trace metrics profile trace_ring =
    let arch = arch_of_name arch_name in
    let net =
      match Network.find network_name with
      | Some n -> n
      | None ->
        Printf.eprintf "unknown network %S (available: %s)\n" network_name
          (String.concat ", " (List.map (fun n -> n.Network.nname) Network.networks));
        exit 1
    in
    let cache = Serve.Schedule_cache.create ?dir:cache_dir ~capacity:cache_size () in
    let cfg =
      Serve.Service.config ~strategy ~certify ~node_limit ~time_limit ~jobs ~warm_start
        arch
    in
    match fuse with
    | Serve.Service.Fuse_off ->
      (* byte-identical to the pre-fusion service: same call, same output *)
      let report =
        with_telemetry ?ring:trace_ring trace metrics profile (fun () ->
            Serve.Service.schedule_network ~cache cfg net)
      in
      print_string (Serve.Service.report_to_string report);
      if report.Serve.Service.failed > 0 then exit 1
    | _ ->
      let fr =
        with_telemetry ?ring:trace_ring trace metrics profile (fun () ->
            Serve.Service.schedule_network_fused ~cache ~max_group:fuse_max_group
              ~fuse cfg net)
      in
      print_string (Serve.Service.fused_report_to_string fr);
      if fr.Serve.Service.base.Serve.Service.failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Schedule a whole network: dedup shapes, serve from the certified \
             schedule cache, solve misses on a domain pool; optionally fuse \
             producer-consumer chains to cut off-chip traffic.")
    Term.(const run $ arch_arg $ network_arg $ jobs_arg $ cache_dir_arg $ cache_size_arg
          $ node_limit_arg $ strategy_arg $ time_limit_arg $ certify_arg $ warm_start_arg
          $ fuse_arg $ fuse_max_group_arg $ trace_arg $ metrics_arg $ profile_arg
          $ trace_ring_arg)

(* Shared by serve/request: where the daemon listens. *)
let socket_arg =
  Arg.(value & opt string "/tmp/cosa_daemon.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path of the scheduling daemon.")

(* cosa_cli serve --socket PATH --cache-dir DIR *)
let serve_cmd =
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domain-pool width for solve fan-out inside one request.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"PATH"
           ~doc:"Persist schedules under $(docv); graceful drain rewrites every \
                 in-memory entry there (crash-safe temp-file + rename writes), and \
                 a restart re-serves them after exact-arithmetic re-verification.")
  in
  let cache_size_arg =
    Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"ENTRIES"
           ~doc:"In-memory LRU capacity (distinct schedules).")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue-capacity" ] ~docv:"N"
           ~doc:"Bounded request queue; requests beyond $(docv) are rejected \
                 $(b,queue-full), never silently dropped.")
  in
  let quota_rate_arg =
    Arg.(value & opt float 0. & info [ "quota-rate" ] ~docv:"TOKENS/S"
           ~doc:"Per-client token-bucket refill rate; 0 disables quotas.")
  in
  let quota_burst_arg =
    Arg.(value & opt float 8. & info [ "quota-burst" ] ~docv:"TOKENS"
           ~doc:"Per-client token-bucket capacity.")
  in
  let shed_arg =
    Arg.(value & opt float 30. & info [ "shed-delay" ] ~docv:"SECONDS"
           ~doc:"Estimated queue delay beyond which new requests are shed.")
  in
  let default_budget_arg =
    Arg.(value & opt float 30. & info [ "default-budget" ] ~docv:"SECONDS"
           ~doc:"SLO budget assumed for requests that carry none.")
  in
  let tcp_arg =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Also listen on TCP at $(docv) (same wire protocol) — the \
                 multi-host transport.")
  in
  let peer_arg =
    Arg.(value & opt_all string [] & info [ "peer" ] ~docv:"ENDPOINT"
           ~doc:"Warm peer to probe on local cache misses ($(i,host:port) or a \
                 Unix socket path); repeatable. Peer records are re-certified in \
                 exact arithmetic before being served or cached.")
  in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
           ~doc:"Cache shard count. Each shard has its own lock and its own \
                 crash-safe persistence subdirectory, so connection threads \
                 answer cache hits inline instead of serializing through the \
                 solver thread.")
  in
  let tmp_sweep_age_arg =
    Arg.(value & opt float 0. & info [ "tmp-sweep-age" ] ~docv:"SECONDS"
           ~doc:"Only sweep stale cache temp files older than $(docv) at \
                 startup; 0 (default) sweeps all leftovers.")
  in
  let read_deadline_arg =
    Arg.(value & opt float 30. & info [ "read-deadline" ] ~docv:"SECONDS"
           ~doc:"Per-connection receive deadline; a client stalling mid-frame \
                 this long is disconnected. 0 disables.")
  in
  let idle_timeout_arg =
    Arg.(value & opt float 300. & info [ "idle-timeout" ] ~docv:"SECONDS"
           ~doc:"Reap connections idle this long between frames. 0 disables.")
  in
  let fault_sites_arg =
    Arg.(value & opt (some string) None & info [ "fault-sites" ] ~docv:"CSV"
           ~doc:"With --fault-seed, restrict injection to these comma-separated \
                 sites (e.g. $(b,net.conn_reset,net.partial_frame)).")
  in
  let fault_crash_arg =
    Arg.(value & flag & info [ "fault-crash" ]
           ~doc:"Honor the net.peer_crash fault site with a process exit(42) \
                 mid-response. Chaos harnesses only.")
  in
  let flight_arg =
    Arg.(value & opt int 256 & info [ "flight" ] ~docv:"N"
           ~doc:"Flight-recorder ring size: the last $(docv) per-request records \
                 readable live through `cosa_cli trace-dump` (min 16; always on).")
  in
  let run arch_name socket jobs cache_dir cache_size queue_capacity quota_rate
      quota_burst shed_delay default_budget tcp peers shards tmp_sweep_age
      read_deadline idle_timeout fault_seed fault_rate fault_sites fault_crash flight
      node_limit strategy time_limit certify warm_start trace metrics profile
      trace_ring log_file log_level =
    arm_event_log log_file log_level;
    (match trace_ring with Some n -> Telemetry.Trace.set_capacity n | None -> ());
    let arch = arch_of_name arch_name in
    let tcp =
      Option.map
        (fun s ->
          match Daemon.Client.endpoint_of_string s with
          | Daemon.Client.Tcp (host, port) -> (host, port)
          | Daemon.Client.Unix_path _ ->
            Printf.eprintf "--tcp expects HOST:PORT (got %s)\n" s;
            exit 2)
        tcp
    in
    let service =
      Serve.Service.config ~strategy ~certify ~node_limit ~time_limit ~jobs ~warm_start
        arch
    in
    let admission =
      Daemon.Admission.default_config ~queue_capacity ~quota_rate ~quota_burst
        ~shed_delay_s:shed_delay ~time_limit ()
    in
    (* The daemon always runs on the sharded, thread-safe tier: shards = 1
       degenerates to the single-partition cache but keeps the inline
       cache fast path on connection threads. *)
    let sharded =
      Cluster.Sharded_cache.create ?dir:cache_dir ~tmp_sweep_age_s:tmp_sweep_age
        ~capacity:(max cache_size shards) ~shards ()
    in
    let peer_tier =
      match peers with
      | [] -> None
      | eps -> Some (Cluster.Peers.create (List.map Daemon.Client.endpoint_of_string eps))
    in
    (* Live-introspection sections for the Stats frame: per-shard cache
       counters always, per-peer health when the warm tier is armed. *)
    let stats_extra =
      ("shards", fun () -> Cluster.Sharded_cache.stats_json sharded)
      ::
      (match peer_tier with
       | None -> []
       | Some p -> [ ("peers", fun () -> Cluster.Peers.stats_json p) ])
    in
    let cfg =
      Daemon.Server.config ~admission ?cache_dir ~cache_capacity:cache_size
        ~default_budget_s:default_budget ?tcp
        ~tier:(Cluster.Sharded_cache.tier sharded)
        ?remote_probe:
          (Option.map
             (fun p -> fun ~arch ~layer fp -> Cluster.Peers.probe p ~arch ~layer fp)
             peer_tier)
        ?housekeeping:(Option.map (fun p () -> Cluster.Peers.tick p) peer_tier)
        ~read_deadline_s:read_deadline ~idle_timeout_s:idle_timeout
        ~tmp_sweep_age_s:tmp_sweep_age ~fault_crash_exit:fault_crash
        ~flight_capacity:flight ~stats_extra ~socket_path:socket service
    in
    let server = Daemon.Server.create cfg in
    (* SIGTERM/SIGINT request a graceful drain: finish in-flight work,
       persist the cache, exit 0. [shutdown] is one atomic store, so it
       is safe from the handler. *)
    let graceful = Sys.Signal_handle (fun _ -> Daemon.Server.shutdown server) in
    Sys.set_signal Sys.sigterm graceful;
    Sys.set_signal Sys.sigint graceful;
    Printf.printf "daemon listening on %s%s (arch %s, cache %s, %d shards%s)\n%!"
      socket
      (match tcp with
       | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p
       | None -> "")
      arch.Spec.aname
      (Option.value cache_dir ~default:"memory-only")
      shards
      (match peers with
       | [] -> ""
       | l -> Printf.sprintf ", %d peers" (List.length l));
    let serve () =
      with_telemetry trace metrics profile (fun () -> Daemon.Server.run server)
    in
    (match fault_seed with
     | None -> serve ()
     | Some seed ->
       if not (fault_rate >= 0. && fault_rate <= 1.) then begin
         Printf.eprintf "--fault-rate must be in [0, 1] (got %g)\n" fault_rate;
         exit 2
       end;
       let only =
         match fault_sites with
         | None -> []
         | Some csv ->
           List.filter (fun s -> s <> "") (String.split_on_char ',' csv)
       in
       Robust.Fault.with_faults ~rate:fault_rate ~only seed (fun () ->
           serve ();
           Printf.printf "faults fired: %d\n" (Robust.Fault.fired_count ())));
    let s = Daemon.Server.stats server in
    Printf.printf
      "drained: %d received, %d served (%d fast-path), %d failed; rejected %d \
       queue-full, %d quota, %d shedding, %d deadline; %d reaped; %d cache \
       records persisted\n"
      s.Daemon.Server.received s.Daemon.Server.served s.Daemon.Server.fastpath_served
      s.Daemon.Server.failed s.Daemon.Server.rejected_queue_full
      s.Daemon.Server.rejected_quota s.Daemon.Server.rejected_shedding
      s.Daemon.Server.rejected_deadline s.Daemon.Server.reaped
      s.Daemon.Server.persisted
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent scheduling daemon: bounded queue, SLO-aware \
             admission over the degradation ladder, typed backpressure, graceful \
             drain on SIGTERM. The schedule cache is sharded (--shards) so cache \
             hits answer inline on connection threads; --tcp adds a multi-host \
             listener and --peer arms the health-checked warm-peer tier.")
    Term.(const run $ arch_arg $ socket_arg $ jobs_arg $ cache_dir_arg $ cache_size_arg
          $ queue_arg $ quota_rate_arg $ quota_burst_arg $ shed_arg $ default_budget_arg
          $ tcp_arg $ peer_arg $ shards_arg $ tmp_sweep_age_arg $ read_deadline_arg
          $ idle_timeout_arg $ fault_seed_arg $ fault_rate_arg $ fault_sites_arg
          $ fault_crash_arg $ flight_arg
          $ node_limit_arg $ strategy_arg $ time_limit_arg $ certify_arg $ warm_start_arg
          $ trace_arg $ metrics_arg $ profile_arg
          $ trace_ring_arg $ log_arg $ log_level_arg)

(* cosa_cli request <layer> --budget 0.5 *)
let request_cmd =
  let target_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:"Layer name, or network name with --network.")
  in
  let network_flag =
    Arg.(value & flag & info [ "network" ]
           ~doc:"Treat TARGET as a network name instead of a layer name.")
  in
  let budget_arg =
    Arg.(value & opt float 0. & info [ "budget" ] ~docv:"SECONDS"
           ~doc:"SLO budget from arrival; 0 uses the server default. Admission \
                 picks the highest degradation-ladder rung that fits, or rejects \
                 $(b,deadline-unmeetable) up front.")
  in
  let client_arg =
    Arg.(value & opt string "" & info [ "client" ] ~docv:"ID"
           ~doc:"Quota identity; empty shares the anonymous bucket.")
  in
  let timeout_arg =
    Arg.(value & opt float 60. & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Client-side socket timeout.")
  in
  let endpoint_arg =
    Arg.(value & opt_all string [] & info [ "endpoint" ] ~docv:"ENDPOINT"
           ~doc:"Daemon endpoint ($(i,host:port) or a Unix socket path); \
                 repeatable — transport failures fail over to the next endpoint \
                 and retry with exponential backoff. Overrides --socket.")
  in
  let retries_arg =
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
           ~doc:"Extra passes over the endpoint list after all fail (transport \
                 failures only; typed rejections are never retried).")
  in
  let retry_backoff_arg =
    Arg.(value & opt float 0.1 & info [ "retry-backoff" ] ~docv:"SECONDS"
           ~doc:"Initial backoff between retry passes; doubles with jitter.")
  in
  let cache_only_flag =
    Arg.(value & flag & info [ "cache-only" ]
           ~doc:"Only serve from the daemon's cache tier; a miss is a typed \
                 rejection, never a solve. This is the peer-probe mode.")
  in
  let run arch socket target network budget client timeout endpoints retries
      retry_backoff cache_only =
    (* Mint the request id client-side (hop 0 = origin) so the operator can
       grep this id in the daemon's flight recorder, event log, and trace —
       the same id the daemon propagates to any warm-peer probe. *)
    let req_id =
      let mix z =
        let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
        let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
        Int64.logxor z (Int64.shift_right_logical z 31)
      in
      let seed =
        Int64.logxor
          (Int64.of_float (Unix.gettimeofday () *. 1e6))
          (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40)
      in
      let id = mix seed in
      if id = 0L then 1L else id
    in
    let req =
      {
        Daemon.Protocol.client;
        budget_s = budget;
        arch;
        target =
          (if network then Daemon.Protocol.Network target
           else Daemon.Protocol.Layer target);
        cache_only;
        req_id;
        hop = 0;
      }
    in
    Printf.printf "request id %s\n" (Telemetry.Trace.request_id_hex req_id);
    let result =
      match endpoints with
      | [] -> Daemon.Client.one_shot ~timeout_s:timeout socket req
      | eps ->
        Daemon.Client.request_failover ~retries ~backoff_s:retry_backoff
          ~timeout_s:timeout
          ~endpoints:(List.map Daemon.Client.endpoint_of_string eps)
          req
    in
    match result with
    | Error msg ->
      Printf.eprintf "request failed: %s\n" msg;
      exit 1
    | Ok (Daemon.Protocol.Failed msg) ->
      Printf.eprintf "server error: %s\n" msg;
      exit 1
    | Ok (Daemon.Protocol.Stats _) ->
      Printf.eprintf "server error: unexpected stats frame\n";
      exit 1
    | Ok (Daemon.Protocol.Rejected reason) ->
      Printf.printf "rejected: %s\n" (Daemon.Protocol.reject_reason_to_string reason);
      exit 3
    | Ok (Daemon.Protocol.Scheduled s) ->
      Printf.printf "scheduled at rung %s (queue wait %.3fs, served in %.3fs)\n"
        (Robust.Ladder.to_string s.Daemon.Protocol.rung)
        s.Daemon.Protocol.queue_wait_s s.Daemon.Protocol.serve_s;
      List.iter
        (fun (l : Daemon.Protocol.served_layer) ->
          Printf.printf "  %-28s x%-4d %-12s certify:%s\n" l.Daemon.Protocol.name
            l.Daemon.Protocol.repeats l.Daemon.Protocol.origin l.Daemon.Protocol.verdict)
        s.Daemon.Protocol.layers;
      Printf.printf "total: latency=%.0f cycles, energy=%.4g pJ\n"
        s.Daemon.Protocol.total_latency s.Daemon.Protocol.total_energy_pj
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one scheduling request to a running daemon (or a failover \
             list of daemons via repeated --endpoint). Exit status: 0 scheduled, \
             3 typed rejection (backpressure/deadline), 1 failure.")
    Term.(const run $ arch_arg $ socket_arg $ target_arg $ network_flag $ budget_arg
          $ client_arg $ timeout_arg $ endpoint_arg $ retries_arg $ retry_backoff_arg
          $ cache_only_flag)

(* cosa_cli stats / trace-dump: live daemon introspection over the wire.
   Both ride the Stats frame, which the server answers inline on the
   connection thread — a query never queues behind the solver, is never
   counted as a request, and books no cache miss. *)
let stats_endpoint_arg =
  Arg.(value & opt (some string) None & info [ "endpoint" ] ~docv:"ENDPOINT"
         ~doc:"Daemon endpoint ($(i,host:port) or a Unix socket path). \
               Overrides --socket.")

let stats_timeout_arg =
  Arg.(value & opt float 5. & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Client-side connect/exchange timeout.")

let resolve_endpoint socket endpoint =
  match endpoint with
  | Some e -> Daemon.Client.endpoint_of_string e
  | None -> Daemon.Client.Unix_path socket

let fetch_stats ep timeout scope =
  match Daemon.Client.stats_ep ~timeout_s:timeout ep scope with
  | Ok payload -> payload
  | Error msg ->
    Printf.eprintf "stats query failed (%s): %s\n"
      (Daemon.Client.endpoint_to_string ep) msg;
    exit 1

let stats_cmd =
  let watch_arg =
    Arg.(value & opt (some float) None & info [ "watch" ] ~docv:"SECONDS"
           ~doc:"Re-query and re-print every $(docv) seconds until interrupted.")
  in
  let prometheus_flag =
    Arg.(value & flag & info [ "prometheus" ]
           ~doc:"Emit Prometheus text exposition (metric families with \
                 cumulative histogram buckets) instead of the JSON snapshot.")
  in
  let run socket endpoint timeout watch prometheus =
    let ep = resolve_endpoint socket endpoint in
    let scope =
      if prometheus then Daemon.Protocol.Stats_prometheus
      else Daemon.Protocol.Stats_full
    in
    let once () =
      print_endline (fetch_stats ep timeout scope);
      (* a watcher is often piped (jq, tee): deliver each snapshot now,
         not whenever the block buffer happens to fill *)
      flush stdout
    in
    match watch with
    | None -> once ()
    | Some period ->
      let period = Float.max 0.1 period in
      while true do
        once ();
        print_newline ();
        Unix.sleepf period
      done
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Query a live daemon's introspection snapshot: counters, admission \
             p95 windows and rung costs, per-shard cache hit rates, peer health, \
             and the flight recorder — as one JSON object (or --prometheus \
             text). Answered inline by the daemon; never queued, counted, or \
             admission-priced, and books no cache miss.")
    Term.(const run $ socket_arg $ stats_endpoint_arg $ stats_timeout_arg $ watch_arg
          $ prometheus_flag)

let trace_dump_cmd =
  let run socket endpoint timeout =
    let ep = resolve_endpoint socket endpoint in
    print_endline (fetch_stats ep timeout Daemon.Protocol.Stats_flight)
  in
  Cmd.v
    (Cmd.info "trace-dump"
       ~doc:"Dump a live daemon's flight recorder: the last N requests (id, \
             hop, client, target, rung, origin, verdict, queue wait, serve \
             time) as a JSON array, oldest first. Grep a request id printed \
             by `cosa_cli request` to follow one request across hops.")
    Term.(const run $ socket_arg $ stats_endpoint_arg $ stats_timeout_arg)

(* cosa_cli exp <id> *)
let exp_cmd =
  let id_arg =
    let doc = "Experiment id (fig1..fig11, tab6, abl_*; `cosa_cli list exps`)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id =
    match Registry.find id with
    | e -> print_string (e.Registry.run ())
    | exception Not_found ->
      Printf.eprintf "unknown experiment %S (available: %s)\n" id
        (String.concat ", " (Registry.ids ()));
      exit 1
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run one paper experiment and print its table/figure data.")
    Term.(const run $ id_arg)

(* cosa_cli simulate <layer> *)
let simulate_cmd =
  let run arch_name layer_name time_limit fault_seed fault_rate certify trace metrics
      profile =
    let arch = arch_of_name arch_name in
    let layer = find_layer layer_name in
    with_telemetry trace metrics profile @@ fun () ->
    with_faults fault_seed fault_rate (fun () ->
        let r = Cosa.schedule ~time_limit ~certify arch layer in
        match Noc_sim.simulate_r arch r.Cosa.mapping with
        | Error f ->
          Printf.eprintf "simulation failed: %s\n" (Robust.Failure.to_string f);
          exit 1
        | Ok s ->
          Printf.printf "layer %s on %s (CoSA schedule)\n" layer.Layer.name arch.Spec.aname;
          Printf.printf
            "NoC-simulated latency: %.0f cycles%s\n\
             simulated %d cycles over %d/%d NoC steps; %d packets, %d flit-hops\n\
             DRAM busy %d cycles; PE compute %d cycles/step\n"
            s.Noc_sim.latency
            (if s.Noc_sim.sampled then " (sampled + extrapolated)" else "")
            s.Noc_sim.simulated_cycles s.Noc_sim.simulated_steps s.Noc_sim.total_steps
            s.Noc_sim.packets s.Noc_sim.flit_hops s.Noc_sim.dram_busy_cycles
            s.Noc_sim.compute_cycles_per_step;
          print_certification r.Cosa.certification;
          (* flit-conservation certificate over the finished simulation *)
          if certify <> Cosa.Off then begin
            match Certify.Noc_cert.check s with
            | Certify.Certificate.Certified -> Printf.printf "NoC flits: certified\n"
            | Certify.Certificate.Violated _ as c ->
              Printf.printf "NoC flits: %s\n" (Certify.Certificate.to_string c);
              if certify = Cosa.Strict then exit 1
          end)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the cycle-level NoC simulator on a CoSA schedule.")
    Term.(const run $ arch_arg $ layer_arg $ time_limit_arg $ fault_seed_arg
          $ fault_rate_arg $ certify_arg $ trace_arg $ metrics_arg $ profile_arg)

(* cosa_cli evaluate <file> *)
let evaluate_cmd =
  let file_arg =
    let doc = "Schedule file previously written by `schedule --save`." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run arch_name file =
    let arch = arch_of_name arch_name in
    match Mapping_io.load file with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" file e;
      exit 1
    | Ok m ->
      (match Mapping.validate arch m with
       | [] ->
         print_string (Mapping.to_loop_nest arch m);
         let e = Model.evaluate arch m in
         print_string (Model.summary arch e)
       | vs ->
         Printf.eprintf "schedule is invalid on %s:\n" arch.Spec.aname;
         List.iter
           (fun v -> Printf.eprintf "  %s\n" (Mapping.violation_to_string v))
           vs;
         exit 1)
  in
  Cmd.v (Cmd.info "evaluate" ~doc:"Validate and evaluate a saved schedule file.")
    Term.(const run $ arch_arg $ file_arg)

(* cosa_cli list <what> *)
let list_cmd =
  let what_arg =
    Arg.(value & pos 0 (enum [ ("layers", `Layers); ("archs", `Archs); ("exps", `Exps) ])
           `Exps & info [] ~docv:"WHAT" ~doc:"What to list: layers, archs, or exps.")
  in
  let run what =
    match what with
    | `Layers ->
      List.iter
        (fun (suite, layers) ->
          Printf.printf "%s:\n" suite;
          List.iter (fun (l : Layer.t) -> Printf.printf "  %s\n" (Layer.to_string l)) layers)
        Zoo.suites
    | `Archs ->
      List.iter (fun (_, a) -> print_string (Spec.to_string a)) Spec.variants
    | `Exps ->
      List.iter
        (fun e -> Printf.printf "%-14s %s\n" e.Registry.id e.Registry.title)
        Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available layers, architectures, or experiments.")
    Term.(const run $ what_arg)

let () =
  let doc = "CoSA: scheduling spatial DNN accelerators by constrained optimization" in
  let info = Cmd.info "cosa_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ schedule_cmd; batch_cmd; serve_cmd; request_cmd; stats_cmd; trace_dump_cmd;
            exp_cmd; simulate_cmd; evaluate_cmd; list_cmd ]))
