(* Full benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section V) plus the DESIGN.md ablations, then runs
   Bechamel micro-benchmarks of the core computational kernels (one
   Test.make per reproduced artefact family).

   Run with: dune exec bench/main.exe
   A single experiment: dune exec bin/cosa_cli.exe -- exp fig6

   Besides the human-readable report on stdout, the harness accumulates a
   machine-readable summary — per-experiment wall time plus a telemetry
   snapshot (branch-and-bound nodes, simplex iterations, cache hit rates,
   micro-kernel ns/run) — and writes it to BENCH_results.json so CI and
   regression tooling can diff runs without parsing tables. *)

(* ---- machine-readable results ---------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

(* Counters of a snapshot as one JSON object (histograms are summarised by
   count and sum — enough for rate regressions without bucket noise). *)
let snapshot_json (s : Telemetry.Metrics.snapshot) =
  let counters =
    List.map
      (fun (name, v) -> Printf.sprintf "\"%s\":%d" (json_escape name) v)
      s.Telemetry.Metrics.counters
  in
  let gauges =
    List.map
      (fun (name, v) -> Printf.sprintf "\"%s\":%s" (json_escape name) (json_float v))
      s.Telemetry.Metrics.gauges
  in
  let hists =
    List.map
      (fun (name, (h : Telemetry.Metrics.hist_snapshot)) ->
        Printf.sprintf "\"%s\":{\"count\":%d,\"sum\":%s}" (json_escape name)
          h.Telemetry.Metrics.count (json_float h.Telemetry.Metrics.sum))
      s.Telemetry.Metrics.histograms
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
    (String.concat "," counters) (String.concat "," gauges) (String.concat "," hists)

let exp_results : string list ref = ref []
let serve_result : string option ref = ref None
let sweep_result : string option ref = ref None
let soak_result : string option ref = ref None
let micro_results : string list ref = ref []

let write_results path =
  let sections =
    [ Printf.sprintf "\"experiments\":[%s]" (String.concat "," (List.rev !exp_results)) ]
    @ (match !serve_result with Some s -> [ "\"serve\":" ^ s ] | None -> [])
    @ (match !sweep_result with Some s -> [ "\"warm_sweep\":" ^ s ] | None -> [])
    @ (match !soak_result with Some s -> [ "\"soak\":" ^ s ] | None -> [])
    @ [ Printf.sprintf "\"micro\":[%s]" (String.concat "," (List.rev !micro_results)) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc ("{" ^ String.concat "," sections ^ "}\n"));
  Printf.printf "machine-readable results written to %s\n" path

let run_experiments () =
  Telemetry.Sink.set Telemetry.Sink.Memory;
  List.iter
    (fun (e : Registry.t) ->
      Telemetry.Metrics.reset ();
      let t0 = Unix.gettimeofday () in
      let report = e.Registry.run () in
      let wall = Unix.gettimeofday () -. t0 in
      print_string report;
      Printf.printf "[%s completed in %.1f s]\n" e.Registry.id wall;
      exp_results :=
        Printf.sprintf "{\"id\":\"%s\",\"wall_s\":%s,\"telemetry\":%s}"
          (json_escape e.Registry.id) (json_float wall)
          (snapshot_json (Telemetry.Metrics.snapshot ()))
        :: !exp_results;
      flush stdout)
    Registry.all;
  Telemetry.Metrics.reset ();
  Telemetry.Sink.set Telemetry.Sink.Null

(* Bechamel micro-benchmarks: the kernels whose cost dominates each
   artefact family. *)
let micro_benchmarks () =
  let open Bechamel in
  (* the micro numbers are the <2%-overhead acceptance baseline, so they
     must measure the disabled-telemetry fast path *)
  Telemetry.Sink.set Telemetry.Sink.Null;
  let arch = Spec.baseline in
  let layer = Zoo.find "3_14_256_256_1" in
  let mapping = (Cosa.schedule arch layer).Cosa.mapping in
  let formulation = Cosa_formulation.build arch layer in
  let relaxed = Milp.Bb.relax formulation.Cosa_formulation.lp in
  let rng = Prim.Rng.create 99 in
  let tests =
    [
      (* figs 1/3/4, 6-9: every data point is one analytical-model call *)
      Test.make ~name:"model_evaluate(fig1,3,4,6-9)"
        (Staged.stage (fun () -> ignore (Model.evaluate arch mapping)));
      (* tab6 + all CoSA rows: LP relaxation solve inside branch-and-bound *)
      Test.make ~name:"simplex_solve(tab6,cosa)"
        (Staged.stage (fun () -> ignore (Milp.Simplex.solve relaxed)));
      (* fig1: one valid-schedule sample *)
      Test.make ~name:"sampler_valid(fig1)"
        (Staged.stage (fun () -> ignore (Sampler.valid rng arch layer)));
      (* fig10: one NoC-simulator cycle on a loaded mesh *)
      Test.make ~name:"mesh_cycle(fig10)"
        (Staged.stage
           (let mesh = Mesh.create arch.Spec.noc in
            let pkt =
              Packet.make ~id:0 ~src:(-1) ~dests:[ 0; 5; 10; 15 ] ~flits:8
                ~tensor:Dims.W ~step:0
            in
            fun () ->
              if Mesh.idle mesh then Mesh.inject mesh Mesh.Gb pkt;
              Mesh.step mesh));
      (* fig11: one CoSA-GPU one-shot schedule *)
      Test.make ~name:"gpu_cosa_schedule(fig11)"
        (Staged.stage (fun () ->
             ignore (Gpu.cosa_schedule Gpu.k80 (Gpu.gemm_of_layer layer))));
    ]
  in
  print_newline ();
  print_endline "Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "============================================";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None ())
          [ instance ] test
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
            Printf.printf "  %-32s %12.1f ns/run\n" name ns;
            micro_results :=
              Printf.sprintf "{\"name\":\"%s\",\"ns_per_run\":%s}" (json_escape name)
                (json_float ns)
              :: !micro_results
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
        analyzed)
    tests;
  flush stdout

(* Batch-service benchmarks: cold-vs-warm ResNet-50 through the certified
   schedule cache, plus the domain-pool determinism check (the acceptance
   criteria of the serve subsystem: warm >= 10x faster with byte-identical
   schedules, and a 4-domain run matching the 1-domain run exactly). *)
let serve_benchmarks () =
  print_newline ();
  print_endline "Batch service: cold vs warm network scheduling";
  print_endline "==============================================";
  Telemetry.Sink.set Telemetry.Sink.Memory;
  Telemetry.Metrics.reset ();
  let arch = Spec.baseline in
  let net = Network.resnet50 in
  let mappings report =
    List.map
      (fun (lr : Serve.Service.layer_report) ->
        match lr.Serve.Service.served with
        | Ok s -> Mapping_io.to_string s.Serve.Service.mapping
        | Error f -> "FAILED " ^ Robust.Failure.to_string f)
      report.Serve.Service.layers
  in
  (* The node budget, not the wall clock, must be the binding limit: node-
     bound branch-and-bound terminates deterministically, so jobs=1 and
     jobs=4 (and cold vs warm) produce bit-identical schedules even under
     domain-contention timing noise. Two-stage is pinned because the joint
     MIP's per-node LPs are ~100x more expensive, so no practical node
     budget keeps it off the wall clock. *)
  let run ~jobs ~cache cfg_arch =
    let cfg =
      Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:6_000 ~time_limit:60.
        ~jobs cfg_arch
    in
    Serve.Service.schedule_network ~cache cfg net
  in
  let cache = Serve.Schedule_cache.create ~capacity:256 () in
  let cold = run ~jobs:4 ~cache arch in
  let warm = run ~jobs:4 ~cache arch in
  let speedup = cold.Serve.Service.wall_time /. Float.max 1e-9 warm.Serve.Service.wall_time in
  Printf.printf
    "cold: %.2f s (%d distinct shapes solved)\nwarm: %.4f s (%d served from cache)\n\
     warm speedup: %.0fx (acceptance: >= 10x)\n"
    cold.Serve.Service.wall_time cold.Serve.Service.distinct warm.Serve.Service.wall_time
    warm.Serve.Service.served_from_cache speedup;
  Printf.printf "warm schedules byte-identical: %b\n" (mappings cold = mappings warm);
  Printf.printf "warm total latency identical: %b\n"
    (cold.Serve.Service.total_latency = warm.Serve.Service.total_latency);
  (* pool determinism: same request, 1 domain vs 4 domains, fresh caches *)
  let one = run ~jobs:1 ~cache:(Serve.Schedule_cache.create ~capacity:256 ()) arch in
  let four = run ~jobs:4 ~cache:(Serve.Schedule_cache.create ~capacity:256 ()) arch in
  let jobs_identical = mappings one = mappings four in
  Printf.printf "1-domain vs 4-domain schedules identical: %b\n" jobs_identical;
  Printf.printf "1-domain vs 4-domain total latency identical: %b\n"
    (one.Serve.Service.total_latency = four.Serve.Service.total_latency);
  serve_result :=
    Some
      (Printf.sprintf
         "{\"cold_s\":%s,\"warm_s\":%s,\"warm_speedup\":%s,\"warm_hit_rate\":%s,\
          \"warm_identical\":%b,\"jobs_identical\":%b,\"telemetry\":%s}"
         (json_float cold.Serve.Service.wall_time)
         (json_float warm.Serve.Service.wall_time)
         (json_float speedup)
         (json_float (Serve.Schedule_cache.hit_rate cache))
         (mappings cold = mappings warm)
         jobs_identical
         (snapshot_json (Telemetry.Metrics.snapshot ())));
  Telemetry.Metrics.reset ();
  Telemetry.Sink.set Telemetry.Sink.Null;
  flush stdout

(* Fault-injected soak of the scheduling daemon: mixed interactive traffic
   against an in-process server with the deterministic fault harness armed
   on the solver sites. Acceptance, per seed:

   - zero wrong-schedule serves: every [Scheduled] layer is re-parsed from
     its wire record and re-certified in exact arithmetic by the harness
     (faults are restricted to solver sites, so server- and harness-side
     certification stay sound while solves are being perturbed);
   - typed overload handling: the load step (more concurrent clients than
     queue slots, tight budgets) must produce typed rejections and no
     [Failed] responses — backpressure degrades monotonically, it never
     turns into silent drops or errors;
   - bounded latency: p95 server-side serve time of admitted requests stays
     within the request SLO (modest slack for the final deadline check);
   - clean drain: shutdown answers everything in flight, accounting
     balances (served + failed + rejected = received), the cache persists,
     and a warm restart serves the soaked shapes back from disk. *)
let soak_seeds = [ 11; 23; 47 ]
let soak_fault_rate = 0.02

let soak_solver_sites =
  [ "simplex.pivot"; "simplex.refactor"; "bb.node"; "sampler.valid"; "cosa.warm" ]

let soak_layers =
  [ "3_56_64_64_1"; "1_56_64_256_1"; "1_56_256_64_1"; "3_28_128_128_1";
    "1_28_128_512_1" ]

let soak_failures = ref 0

let soak_check cond msg =
  if cond then Printf.printf "  PASS %s\n" msg
  else begin
    Printf.printf "  FAIL %s\n" msg;
    incr soak_failures
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

(* One mixed-traffic soak round under one fault seed. Returns a JSON
   fragment for the results file. *)
let soak_round seed =
  let tmp = Filename.get_temp_dir_name () in
  let tag = Printf.sprintf "cosa_soak_%d_%d" (Unix.getpid ()) seed in
  let cache_dir = Filename.concat tmp tag in
  rm_rf cache_dir;
  let sock = Filename.concat tmp (tag ^ ".sock") in
  let burst_budget = 0.5 and warm_budget = 10. in
  let make_server () =
    let service =
      Serve.Service.config ~strategy:Cosa.Auto ~certify:Cosa.Strict ~node_limit:2_000
        ~time_limit:0.6 ~jobs:2 Spec.baseline
    in
    let admission =
      Daemon.Admission.default_config ~queue_capacity:4 ~shed_delay_s:2.
        ~min_samples:4 ~time_limit:0.6 ()
    in
    Daemon.Server.create
      (Daemon.Server.config ~admission ~cache_dir ~default_budget_s:warm_budget
         ~socket_path:sock service)
  in
  (* every response any traffic thread sees, for post-hoc verification *)
  let resp_lock = Mutex.create () in
  let responses : (string * float * Daemon.Protocol.response) list ref = ref [] in
  let client_errors = ref 0 in
  let record budget = function
    | Ok resp ->
      Mutex.protect resp_lock (fun () -> responses := ("", budget, resp) :: !responses)
    | Error _ -> Mutex.protect resp_lock (fun () -> incr client_errors)
  in
  let send client budget layer =
    Daemon.Client.request client
      { Daemon.Protocol.client = ""; budget_s = budget; arch = "baseline";
        target = Daemon.Protocol.Layer layer }
  in
  let server = make_server () in
  let server_thread = Daemon.Server.start server in
  Daemon.Server.wait_ready server;
  let fired = ref 0 in
  Robust.Fault.with_faults ~rate:soak_fault_rate ~only:soak_solver_sites seed
    (fun () ->
      (* warmup: generous budgets, populates cache and cost estimator *)
      (match Daemon.Client.connect sock with
       | Error e -> failwith ("soak: cannot connect: " ^ e)
       | Ok c ->
         List.iter (fun l -> record warm_budget (send c warm_budget l)) soak_layers;
         List.iter (fun l -> record warm_budget (send c warm_budget l)) soak_layers;
         Daemon.Client.close c);
      (* load step: 8 concurrent clients vs 4 queue slots, tight budgets *)
      let burst_threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                match Daemon.Client.connect sock with
                | Error _ -> Mutex.protect resp_lock (fun () -> incr client_errors)
                | Ok c ->
                  let rng = Prim.Rng.create ((seed * 31) + i) in
                  for _ = 1 to 8 do
                    let layer = Prim.Rng.pick rng soak_layers in
                    record burst_budget (send c burst_budget layer)
                  done;
                  Daemon.Client.close c)
              ())
      in
      List.iter Thread.join burst_threads;
      (* recovery after the step: a generous request must be admitted again *)
      (match Daemon.Client.connect sock with
       | Error e -> failwith ("soak: cannot reconnect: " ^ e)
       | Ok c ->
         record warm_budget (send c warm_budget (List.hd soak_layers));
         Daemon.Client.close c);
      fired := Robust.Fault.fired_count ());
  let fired = !fired in
  Daemon.Server.shutdown server;
  Thread.join server_thread;
  let s = Daemon.Server.stats server in
  (* ---- verification (faults disarmed) ---- *)
  let all = !responses in
  let scheduled =
    List.filter_map
      (fun (_, b, r) ->
        match r with Daemon.Protocol.Scheduled x -> Some (b, x) | _ -> None)
      all
  in
  let rejected =
    List.length
      (List.filter (function _, _, Daemon.Protocol.Rejected _ -> true | _ -> false) all)
  in
  let failed =
    List.length
      (List.filter (function _, _, Daemon.Protocol.Failed _ -> true | _ -> false) all)
  in
  (* zero wrong-schedule serves: re-parse and re-certify every response *)
  let wrong = ref 0 in
  List.iter
    (fun (_, (x : Daemon.Protocol.scheduled)) ->
      List.iter
        (fun (l : Daemon.Protocol.served_layer) ->
          if l.Daemon.Protocol.verdict <> "ok" then incr wrong
          else
            match Mapping_io.record_of_string l.Daemon.Protocol.record with
            | Error _ -> incr wrong
            | Ok (_, mapping) ->
              (match Certify.Mapping_cert.check Spec.baseline mapping with
               | Certify.Certificate.Certified -> ()
               | Certify.Certificate.Violated _ -> incr wrong))
        x.Daemon.Protocol.layers)
    scheduled;
  let burst_serve =
    List.filter_map
      (fun (b, (x : Daemon.Protocol.scheduled)) ->
        if b = burst_budget then Some x.Daemon.Protocol.serve_s else None)
      scheduled
  in
  let p95_burst =
    match burst_serve with [] -> 0. | l -> Prim.Stats.percentile 95. l
  in
  Printf.printf
    "seed %d: %d responses (%d scheduled, %d rejected, %d failed), %d faults fired, \
     p95 burst serve %.3fs, drain persisted %d\n"
    seed (List.length all) (List.length scheduled) rejected failed fired p95_burst
    s.Daemon.Server.persisted;
  soak_check (fired > 0) "faults actually fired during the soak";
  soak_check (!wrong = 0) "zero wrong-schedule serves (all responses re-certified)";
  soak_check (failed = 0) "no Failed responses under fault-injected overload";
  soak_check (!client_errors = 0) "no client-side protocol errors";
  soak_check (rejected > 0) "load step produced typed rejections (backpressure)";
  soak_check
    (s.Daemon.Server.rejected_queue_full + s.Daemon.Server.rejected_shedding
     + s.Daemon.Server.rejected_deadline > 0)
    "server counted its rejections by reason";
  soak_check
    (p95_burst <= (burst_budget *. 1.25) +. 0.1)
    "p95 serve time of admitted burst requests within SLO";
  soak_check
    (s.Daemon.Server.served + s.Daemon.Server.failed
     + s.Daemon.Server.rejected_queue_full + s.Daemon.Server.rejected_quota
     + s.Daemon.Server.rejected_shedding + s.Daemon.Server.rejected_deadline
    = s.Daemon.Server.received)
    "drain accounting balances (every request answered exactly once)";
  soak_check (s.Daemon.Server.persisted > 0) "drain persisted the schedule cache";
  (match all with
   | (_, _, Daemon.Protocol.Scheduled _) :: _ ->
     (* responses are newest-first: the post-step generous request *)
     soak_check true "server recovered after the load step"
   | _ -> soak_check false "server recovered after the load step");
  (* warm restart: the drained cache must serve the soaked shapes back *)
  let server2 = make_server () in
  let t2 = Daemon.Server.start server2 in
  Daemon.Server.wait_ready server2;
  let from_cache = ref 0 and restart_wrong = ref 0 in
  (match Daemon.Client.connect sock with
   | Error e -> failwith ("soak: restart connect: " ^ e)
   | Ok c ->
     List.iter
       (fun l ->
         match send c warm_budget l with
         | Ok (Daemon.Protocol.Scheduled x) ->
           List.iter
             (fun (sl : Daemon.Protocol.served_layer) ->
               if String.length sl.Daemon.Protocol.origin >= 5
                  && String.sub sl.Daemon.Protocol.origin 0 5 = "cache"
               then incr from_cache;
               if sl.Daemon.Protocol.verdict <> "ok" then incr restart_wrong)
             x.Daemon.Protocol.layers
         | _ -> incr restart_wrong)
       soak_layers;
     Daemon.Client.close c);
  Daemon.Server.shutdown server2;
  Thread.join t2;
  soak_check
    (!from_cache = List.length soak_layers && !restart_wrong = 0)
    "warm restart served every soaked shape from the persisted cache";
  rm_rf cache_dir;
  Printf.sprintf
    "{\"seed\":%d,\"responses\":%d,\"scheduled\":%d,\"rejected\":%d,\"failed\":%d,\
     \"faults_fired\":%d,\"p95_burst_s\":%s,\"persisted\":%d,\"wrong\":%d,\
     \"restart_from_cache\":%d}"
    seed (List.length all) (List.length scheduled) rejected failed fired
    (json_float p95_burst) s.Daemon.Server.persisted !wrong !from_cache

let soak_benchmarks () =
  print_newline ();
  print_endline "Daemon soak: fault-injected mixed traffic, typed backpressure, drain";
  print_endline "====================================================================";
  Telemetry.Sink.set Telemetry.Sink.Null;
  let rounds = List.map soak_round soak_seeds in
  soak_result :=
    Some
      (Printf.sprintf "{\"fault_rate\":%s,\"rounds\":[%s]}"
         (json_float soak_fault_rate)
         (String.concat "," rounds));
  if !soak_failures > 0 then begin
    Printf.printf "soak: %d acceptance checks FAILED\n" !soak_failures;
    write_results "BENCH_results.json";
    exit 1
  end;
  flush stdout

(* Warm-start sweep: the warm-started-dual-simplex acceptance gate. Every
   distinct ResNet-50 shape is scheduled node-bound (deterministic) twice —
   --warm-start on and off — under identical budgets. Warm starting must
   only change how fast each node LP solves, never the search itself, so
   the gate demands byte-identical schedules, objectives, and node counts,
   then reports the iteration economics (phase1+phase2+dual totals) and
   the fraction of non-root node LPs served by dual reoptimization. *)
let warm_sweep () =
  print_newline ();
  print_endline "Warm-start sweep: node-bound ResNet-50, warm vs cold node LPs";
  print_endline "=============================================================";
  Telemetry.Sink.set Telemetry.Sink.Memory;
  let arch = Spec.baseline in
  let shapes = Network.distinct Network.resnet50 in
  let iter_counters =
    [ "simplex.phase1_iterations"; "simplex.phase2_iterations";
      "simplex.dual_iterations" ]
  in
  let run ~warm_start =
    Telemetry.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let results =
      List.map
        (fun ((e : Network.entry), _) ->
          Cosa.schedule ~strategy:Cosa.Two_stage ~node_limit:3_000 ~time_limit:60.
            ~warm_start arch e.Network.layer)
        shapes
    in
    let wall = Unix.gettimeofday () -. t0 in
    let snap = Telemetry.Metrics.snapshot () in
    let cv = Telemetry.Metrics.counter_value snap in
    let schedules =
      List.map (fun (r : Cosa.result) -> Mapping_io.to_string r.Cosa.mapping) results
    in
    let objectives =
      List.map (fun (r : Cosa.result) -> r.Cosa.objective.Cosa.total) results
    in
    let iters = List.fold_left (fun acc c -> acc + cv c) 0 iter_counters in
    (wall, snap, schedules, objectives, cv "bb.nodes", iters)
  in
  let w_wall, w_snap, w_scheds, w_objs, w_nodes, w_iters = run ~warm_start:true in
  let c_wall, c_snap, c_scheds, c_objs, c_nodes, c_iters = run ~warm_start:false in
  let wcv = Telemetry.Metrics.counter_value w_snap in
  let warm_nodes = wcv "bb.warm_nodes" and cold_nodes = wcv "bb.cold_nodes" in
  let warm_rate =
    if warm_nodes + cold_nodes = 0 then 0.
    else float_of_int warm_nodes /. float_of_int (warm_nodes + cold_nodes)
  in
  let iter_ratio =
    if w_iters = 0 then 0. else float_of_int c_iters /. float_of_int w_iters
  in
  let schedules_identical = w_scheds = c_scheds in
  let objectives_identical = w_objs = c_objs in
  let nodes_identical = w_nodes = c_nodes in
  Printf.printf "%d distinct shapes, node_limit=3000, strategy=two-stage\n"
    (List.length shapes);
  Printf.printf "warm: %.2f s, %d nodes, %d simplex iterations (%d warm-solved node LPs)\n"
    w_wall w_nodes w_iters (wcv "simplex.warm_solves");
  Printf.printf "cold: %.2f s, %d nodes, %d simplex iterations\n" c_wall c_nodes c_iters;
  Printf.printf "iteration ratio cold/warm: %.2fx (acceptance: >= 2x)\n" iter_ratio;
  Printf.printf "non-root node LPs warm-solved: %.1f%% (acceptance: >= 70%%)\n"
    (100. *. warm_rate);
  Printf.printf "schedules byte-identical warm vs cold: %b\n" schedules_identical;
  Printf.printf "objectives identical: %b\nnode counts identical: %b\n"
    objectives_identical nodes_identical;
  sweep_result :=
    Some
      (Printf.sprintf
         "{\"shapes\":%d,\"node_limit\":3000,\"schedules_identical\":%b,\
          \"objectives_identical\":%b,\"nodes_identical\":%b,\"iter_ratio\":%s,\
          \"warm_start_rate\":%s,\"warm\":{\"wall_s\":%s,\"telemetry\":%s},\
          \"cold\":{\"wall_s\":%s,\"telemetry\":%s}}"
         (List.length shapes) schedules_identical objectives_identical nodes_identical
         (json_float iter_ratio) (json_float warm_rate) (json_float w_wall)
         (snapshot_json w_snap) (json_float c_wall) (snapshot_json c_snap));
  Telemetry.Metrics.reset ();
  Telemetry.Sink.set Telemetry.Sink.Null;
  flush stdout

let () =
  let t0 = Unix.gettimeofday () in
  (* one optional argument selects a single section: exp | serve | sweep | micro *)
  (match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
   | Some "exp" -> run_experiments ()
   | Some "serve" -> serve_benchmarks ()
   | Some "sweep" -> warm_sweep ()
   | Some "soak" -> soak_benchmarks ()
   | Some "micro" -> micro_benchmarks ()
   | Some other ->
     Printf.eprintf "unknown section %S (expected exp, serve, sweep, soak, or micro)\n"
       other;
     exit 2
   | None ->
     print_endline "CoSA reproduction: full experiment harness";
     print_endline "==========================================";
     run_experiments ();
     serve_benchmarks ();
     soak_benchmarks ();
     warm_sweep ();
     micro_benchmarks ());
  Printf.printf "\nTotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0);
  write_results "BENCH_results.json"
