(* Full benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section V) plus the DESIGN.md ablations, then runs
   Bechamel micro-benchmarks of the core computational kernels (one
   Test.make per reproduced artefact family).

   Run with: dune exec bench/main.exe
   A single experiment: dune exec bin/cosa_cli.exe -- exp fig6

   Besides the human-readable report on stdout, the harness accumulates a
   machine-readable summary — per-experiment wall time plus a telemetry
   snapshot (branch-and-bound nodes, simplex iterations, cache hit rates,
   micro-kernel ns/run) — and writes it to BENCH_results.json so CI and
   regression tooling can diff runs without parsing tables. *)

(* ---- machine-readable results ---------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

(* Counters of a snapshot as one JSON object (histograms are summarised by
   count and sum — enough for rate regressions without bucket noise).
   Never-touched metrics are suppressed: registered-but-zero counters and
   gauges and empty histograms (all the dram.*/noc.* instruments a solver-
   only section never drives) would otherwise bloat every section and the
   regression baseline with noise that can only ever read 0. *)
let snapshot_json (s : Telemetry.Metrics.snapshot) =
  let counters =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else Some (Printf.sprintf "\"%s\":%d" (json_escape name) v))
      s.Telemetry.Metrics.counters
  in
  let gauges =
    List.filter_map
      (fun (name, v) ->
        if v = 0. then None
        else Some (Printf.sprintf "\"%s\":%s" (json_escape name) (json_float v)))
      s.Telemetry.Metrics.gauges
  in
  let hists =
    List.filter_map
      (fun (name, (h : Telemetry.Metrics.hist_snapshot)) ->
        if h.Telemetry.Metrics.count = 0 then None
        else
          Some
            (Printf.sprintf "\"%s\":{\"count\":%d,\"sum\":%s}" (json_escape name)
               h.Telemetry.Metrics.count (json_float h.Telemetry.Metrics.sum)))
      s.Telemetry.Metrics.histograms
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
    (String.concat "," counters) (String.concat "," gauges) (String.concat "," hists)

let exp_ran = ref false
let exp_results : string list ref = ref []
let serve_result : string option ref = ref None
let sweep_result : string option ref = ref None
let soak_result : string option ref = ref None
let soak_cluster_result : string option ref = ref None
let fuse_result : string option ref = ref None
let micro_ran = ref false
let micro_results : string list ref = ref []

(* Split the top level of an existing results file into (key, raw value)
   pairs so a partial bench run can merge into it instead of overwriting:
   a sweep-only run must not silently drop the committed experiments or
   soak sections. A tiny scanner (depth + string state) is enough — the
   file is our own output. *)
let split_top_level text =
  let n = String.length text in
  let i = ref 0 in
  let sections = ref [] in
  (try
     while !i < n && text.[!i] <> '{' do incr i done;
     incr i;
     let read_string () =
       (* cursor on the opening quote; returns contents, cursor past close *)
       let buf = Buffer.create 16 in
       incr i;
       while text.[!i] <> '"' do
         if text.[!i] = '\\' then begin
           Buffer.add_char buf text.[!i];
           incr i
         end;
         Buffer.add_char buf text.[!i];
         incr i
       done;
       incr i;
       Buffer.contents buf
     in
     let skip_ws () =
       while
         !i < n && (match text.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
       do
         incr i
       done
     in
     let rec members () =
       skip_ws ();
       if !i < n && text.[!i] = '"' then begin
         let key = read_string () in
         skip_ws ();
         if text.[!i] <> ':' then raise Exit;
         incr i;
         skip_ws ();
         let start = !i in
         let depth = ref 0 in
         let stop = ref false in
         while not !stop do
           if !i >= n then raise Exit;
           (match text.[!i] with
            | '"' -> ignore (read_string ()); decr i
            | '{' | '[' -> incr depth
            | '}' | ']' when !depth > 0 -> decr depth
            | ',' when !depth = 0 -> stop := true
            | '}' when !depth = 0 -> stop := true
            | _ -> ());
           if not !stop then incr i
         done;
         let value = String.trim (String.sub text start (!i - start)) in
         sections := (key, value) :: !sections;
         if text.[!i] = ',' then begin
           incr i;
           members ()
         end
       end
     in
     members ()
   with Exit | Invalid_argument _ -> ());
  List.rev !sections

let section_order =
  [ "experiments"; "serve"; "warm_sweep"; "soak"; "soak_cluster"; "fuse"; "micro" ]

let write_results path =
  let fresh =
    (if !exp_ran then
       [ ("experiments",
          Printf.sprintf "[%s]" (String.concat "," (List.rev !exp_results))) ]
     else [])
    @ (match !serve_result with Some s -> [ ("serve", s) ] | None -> [])
    @ (match !sweep_result with Some s -> [ ("warm_sweep", s) ] | None -> [])
    @ (match !soak_result with Some s -> [ ("soak", s) ] | None -> [])
    @ (match !soak_cluster_result with Some s -> [ ("soak_cluster", s) ] | None -> [])
    @ (match !fuse_result with Some s -> [ ("fuse", s) ] | None -> [])
    @ (if !micro_ran then
         [ ("micro", Printf.sprintf "[%s]" (String.concat "," (List.rev !micro_results))) ]
       else [])
  in
  (* sections the current run did not produce survive from the existing file *)
  let kept =
    if Sys.file_exists path then
      List.filter
        (fun (k, _) -> not (List.mem_assoc k fresh))
        (split_top_level
           (In_channel.with_open_bin path In_channel.input_all))
    else []
  in
  let all = fresh @ kept in
  let ordered =
    List.filter_map
      (fun k -> Option.map (fun v -> (k, v)) (List.assoc_opt k all))
      section_order
    @ List.filter (fun (k, _) -> not (List.mem k section_order)) kept
  in
  let sections =
    List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v) ordered
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc ("{" ^ String.concat "," sections ^ "}\n"));
  Printf.printf "machine-readable results written to %s\n" path

let run_experiments () =
  exp_ran := true;
  Telemetry.Sink.set Telemetry.Sink.Memory;
  List.iter
    (fun (e : Registry.t) ->
      Telemetry.Metrics.reset ();
      let t0 = Unix.gettimeofday () in
      let report = e.Registry.run () in
      let wall = Unix.gettimeofday () -. t0 in
      print_string report;
      Printf.printf "[%s completed in %.1f s]\n" e.Registry.id wall;
      exp_results :=
        Printf.sprintf "{\"id\":\"%s\",\"wall_s\":%s,\"telemetry\":%s}"
          (json_escape e.Registry.id) (json_float wall)
          (snapshot_json (Telemetry.Metrics.snapshot ()))
        :: !exp_results;
      flush stdout)
    Registry.all;
  Telemetry.Metrics.reset ();
  Telemetry.Sink.set Telemetry.Sink.Null

(* Bechamel micro-benchmarks: the kernels whose cost dominates each
   artefact family. *)
let micro_benchmarks () =
  micro_ran := true;
  let open Bechamel in
  (* the micro numbers are the <2%-overhead acceptance baseline, so they
     must measure the disabled-telemetry fast path *)
  Telemetry.Sink.set Telemetry.Sink.Null;
  let arch = Spec.baseline in
  let layer = Zoo.find "3_14_256_256_1" in
  let mapping = (Cosa.schedule arch layer).Cosa.mapping in
  let formulation = Cosa_formulation.build arch layer in
  let relaxed = Milp.Bb.relax formulation.Cosa_formulation.lp in
  let rng = Prim.Rng.create 99 in
  (* eta-engine kernel fixtures at the representative row count of the CoSA
     relaxation: a logical basis with the structural columns alongside, one
     FTRAN column (the densest structural one) and one sparse cost vector *)
  let lu_m = relaxed.Milp.Simplex.nrows in
  let lu_ncols = relaxed.Milp.Simplex.ncols in
  let lu_cols = Array.make (lu_ncols + lu_m) ([||], [||]) in
  Array.blit relaxed.Milp.Simplex.cols 0 lu_cols 0 lu_ncols;
  for i = 0 to lu_m - 1 do
    lu_cols.(lu_ncols + i) <- ([| i |], [| 1. |])
  done;
  let lu = Milp.Lu.create lu_m in
  Milp.Lu.refactor lu
    ~scratch:(Array.make_matrix lu_m lu_m 0.)
    ~cols:lu_cols
    ~basis:(Array.init lu_m (fun i -> lu_ncols + i))
    ~pivot_tol:1e-9;
  let lu_col =
    let best = ref 0 in
    for j = 1 to lu_ncols - 1 do
      if Array.length (fst lu_cols.(j)) > Array.length (fst lu_cols.(!best)) then
        best := j
    done;
    lu_cols.(!best)
  in
  let lu_alpha = Array.make lu_m 0. in
  let lu_cost = Array.init lu_m (fun i -> if i mod 3 = 0 then 1. else 0.) in
  let lu_y = Array.make lu_m 0. in
  let tests =
    [
      (* figs 1/3/4, 6-9: every data point is one analytical-model call *)
      Test.make ~name:"model_evaluate(fig1,3,4,6-9)"
        (Staged.stage (fun () -> ignore (Model.evaluate arch mapping)));
      (* tab6 + all CoSA rows: LP relaxation solve inside branch-and-bound *)
      Test.make ~name:"simplex_solve(tab6,cosa)"
        (Staged.stage (fun () -> ignore (Milp.Simplex.solve relaxed)));
      (* per-pivot kernels of the incremental LU engine: sparse FTRAN of
         the densest structural column, BTRAN of a sparse cost vector *)
      Test.make ~name:(Printf.sprintf "lu_ftran(m=%d)" lu_m)
        (Staged.stage (fun () -> Milp.Lu.ftran lu lu_col lu_alpha));
      Test.make ~name:(Printf.sprintf "lu_btran(m=%d)" lu_m)
        (Staged.stage (fun () -> Milp.Lu.btran lu lu_cost lu_y));
      (* fig1: one valid-schedule sample *)
      Test.make ~name:"sampler_valid(fig1)"
        (Staged.stage (fun () -> ignore (Sampler.valid rng arch layer)));
      (* fig10: one NoC-simulator cycle on a loaded mesh *)
      Test.make ~name:"mesh_cycle(fig10)"
        (Staged.stage
           (let mesh = Mesh.create arch.Spec.noc in
            let pkt =
              Packet.make ~id:0 ~src:(-1) ~dests:[ 0; 5; 10; 15 ] ~flits:8
                ~tensor:Dims.W ~step:0
            in
            fun () ->
              if Mesh.idle mesh then Mesh.inject mesh Mesh.Gb pkt;
              Mesh.step mesh));
      (* fig11: one CoSA-GPU one-shot schedule *)
      Test.make ~name:"gpu_cosa_schedule(fig11)"
        (Staged.stage (fun () ->
             ignore (Gpu.cosa_schedule Gpu.k80 (Gpu.gemm_of_layer layer))));
    ]
  in
  print_newline ();
  print_endline "Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "============================================";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None ())
          [ instance ] test
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
            Printf.printf "  %-32s %12.1f ns/run\n" name ns;
            micro_results :=
              Printf.sprintf "{\"name\":\"%s\",\"ns_per_run\":%s}" (json_escape name)
                (json_float ns)
              :: !micro_results
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
        analyzed)
    tests;
  flush stdout

(* Batch-service benchmarks: cold-vs-warm ResNet-50 through the certified
   schedule cache, plus the domain-pool determinism check (the acceptance
   criteria of the serve subsystem: warm >= 10x faster with byte-identical
   schedules, and a 4-domain run matching the 1-domain run exactly). *)
let serve_benchmarks () =
  print_newline ();
  print_endline "Batch service: cold vs warm network scheduling";
  print_endline "==============================================";
  Telemetry.Sink.set Telemetry.Sink.Memory;
  Telemetry.Metrics.reset ();
  let arch = Spec.baseline in
  let net = Network.resnet50 in
  let mappings report =
    List.map
      (fun (lr : Serve.Service.layer_report) ->
        match lr.Serve.Service.served with
        | Ok s -> Mapping_io.to_string s.Serve.Service.mapping
        | Error f -> "FAILED " ^ Robust.Failure.to_string f)
      report.Serve.Service.layers
  in
  (* The node budget, not the wall clock, must be the binding limit: node-
     bound branch-and-bound terminates deterministically, so jobs=1 and
     jobs=4 (and cold vs warm) produce bit-identical schedules even under
     domain-contention timing noise. Two-stage is pinned because the joint
     MIP's per-node LPs are ~100x more expensive, so no practical node
     budget keeps it off the wall clock. *)
  let run ~jobs ~cache cfg_arch =
    let cfg =
      Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:6_000 ~time_limit:60.
        ~jobs cfg_arch
    in
    Serve.Service.schedule_network ~cache cfg net
  in
  let cache = Serve.Schedule_cache.create ~capacity:256 () in
  let cold = run ~jobs:4 ~cache arch in
  let warm = run ~jobs:4 ~cache arch in
  let speedup = cold.Serve.Service.wall_time /. Float.max 1e-9 warm.Serve.Service.wall_time in
  Printf.printf
    "cold: %.2f s (%d distinct shapes solved)\nwarm: %.4f s (%d served from cache)\n\
     warm speedup: %.0fx (acceptance: >= 10x)\n"
    cold.Serve.Service.wall_time cold.Serve.Service.distinct warm.Serve.Service.wall_time
    warm.Serve.Service.served_from_cache speedup;
  Printf.printf "warm schedules byte-identical: %b\n" (mappings cold = mappings warm);
  Printf.printf "warm total latency identical: %b\n"
    (cold.Serve.Service.total_latency = warm.Serve.Service.total_latency);
  (* pool determinism: same request, 1 domain vs 4 domains, fresh caches *)
  let one = run ~jobs:1 ~cache:(Serve.Schedule_cache.create ~capacity:256 ()) arch in
  let four = run ~jobs:4 ~cache:(Serve.Schedule_cache.create ~capacity:256 ()) arch in
  let jobs_identical = mappings one = mappings four in
  Printf.printf "1-domain vs 4-domain schedules identical: %b\n" jobs_identical;
  Printf.printf "1-domain vs 4-domain total latency identical: %b\n"
    (one.Serve.Service.total_latency = four.Serve.Service.total_latency);
  serve_result :=
    Some
      (Printf.sprintf
         "{\"cold_s\":%s,\"warm_s\":%s,\"warm_speedup\":%s,\"warm_hit_rate\":%s,\
          \"warm_identical\":%b,\"jobs_identical\":%b,\"telemetry\":%s}"
         (json_float cold.Serve.Service.wall_time)
         (json_float warm.Serve.Service.wall_time)
         (json_float speedup)
         (json_float (Serve.Schedule_cache.hit_rate cache))
         (mappings cold = mappings warm)
         jobs_identical
         (snapshot_json (Telemetry.Metrics.snapshot ())));
  Telemetry.Metrics.reset ();
  Telemetry.Sink.set Telemetry.Sink.Null;
  flush stdout

(* Fault-injected soak of the scheduling daemon: mixed interactive traffic
   against an in-process server with the deterministic fault harness armed
   on the solver sites. Acceptance, per seed:

   - zero wrong-schedule serves: every [Scheduled] layer is re-parsed from
     its wire record and re-certified in exact arithmetic by the harness
     (faults are restricted to solver sites, so server- and harness-side
     certification stay sound while solves are being perturbed);
   - typed overload handling: the load step (more concurrent clients than
     queue slots, tight budgets) must produce typed rejections and no
     [Failed] responses — backpressure degrades monotonically, it never
     turns into silent drops or errors;
   - bounded latency: p95 server-side serve time of admitted requests stays
     within the request SLO (modest slack for the final deadline check);
   - clean drain: shutdown answers everything in flight, accounting
     balances (served + failed + rejected = received), the cache persists,
     and a warm restart serves the soaked shapes back from disk. *)
let soak_seeds = [ 11; 23; 47 ]
let soak_fault_rate = 0.02

let soak_solver_sites =
  [ "simplex.pivot"; "simplex.refactor"; "bb.node"; "sampler.valid"; "cosa.warm" ]

let soak_layers =
  [ "3_56_64_64_1"; "1_56_64_256_1"; "1_56_256_64_1"; "3_28_128_128_1";
    "1_28_128_512_1" ]

let soak_failures = ref 0

let soak_check cond msg =
  if cond then Printf.printf "  PASS %s\n" msg
  else begin
    Printf.printf "  FAIL %s\n" msg;
    incr soak_failures
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

(* One mixed-traffic soak round under one fault seed. Returns a JSON
   fragment for the results file. *)
let soak_round seed =
  let tmp = Filename.get_temp_dir_name () in
  let tag = Printf.sprintf "cosa_soak_%d_%d" (Unix.getpid ()) seed in
  let cache_dir = Filename.concat tmp tag in
  rm_rf cache_dir;
  let sock = Filename.concat tmp (tag ^ ".sock") in
  let burst_budget = 0.5 and warm_budget = 10. in
  let make_server () =
    let service =
      Serve.Service.config ~strategy:Cosa.Auto ~certify:Cosa.Strict ~node_limit:2_000
        ~time_limit:0.6 ~jobs:2 Spec.baseline
    in
    let admission =
      Daemon.Admission.default_config ~queue_capacity:4 ~shed_delay_s:2.
        ~min_samples:4 ~time_limit:0.6 ()
    in
    Daemon.Server.create
      (Daemon.Server.config ~admission ~cache_dir ~default_budget_s:warm_budget
         ~socket_path:sock service)
  in
  (* every response any traffic thread sees, for post-hoc verification *)
  let resp_lock = Mutex.create () in
  let responses : (string * float * Daemon.Protocol.response) list ref = ref [] in
  let client_errors = ref 0 in
  let record budget = function
    | Ok resp ->
      Mutex.protect resp_lock (fun () -> responses := ("", budget, resp) :: !responses)
    | Error _ -> Mutex.protect resp_lock (fun () -> incr client_errors)
  in
  let send client budget layer =
    Daemon.Client.request client
      { Daemon.Protocol.client = ""; budget_s = budget; arch = "baseline";
        target = Daemon.Protocol.Layer layer; cache_only = false; req_id = 0L;
        hop = 0 }
  in
  Telemetry.Metrics.reset ();
  let server = make_server () in
  let server_thread = Daemon.Server.start server in
  Daemon.Server.wait_ready server;
  let fired = ref 0 in
  Robust.Fault.with_faults ~rate:soak_fault_rate ~only:soak_solver_sites seed
    (fun () ->
      (* warmup: generous budgets, populates cache and cost estimator *)
      (match Daemon.Client.connect sock with
       | Error e -> failwith ("soak: cannot connect: " ^ e)
       | Ok c ->
         List.iter (fun l -> record warm_budget (send c warm_budget l)) soak_layers;
         List.iter (fun l -> record warm_budget (send c warm_budget l)) soak_layers;
         Daemon.Client.close c);
      (* load step: 8 concurrent clients vs 4 queue slots, tight budgets *)
      let burst_threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                match Daemon.Client.connect sock with
                | Error _ -> Mutex.protect resp_lock (fun () -> incr client_errors)
                | Ok c ->
                  let rng = Prim.Rng.create ((seed * 31) + i) in
                  for _ = 1 to 8 do
                    let layer = Prim.Rng.pick rng soak_layers in
                    record burst_budget (send c burst_budget layer)
                  done;
                  Daemon.Client.close c)
              ())
      in
      List.iter Thread.join burst_threads;
      (* recovery after the step: a generous request must be admitted again *)
      (match Daemon.Client.connect sock with
       | Error e -> failwith ("soak: cannot reconnect: " ^ e)
       | Ok c ->
         record warm_budget (send c warm_budget (List.hd soak_layers));
         Daemon.Client.close c);
      fired := Robust.Fault.fired_count ());
  let fired = !fired in
  Daemon.Server.shutdown server;
  Thread.join server_thread;
  let s = Daemon.Server.stats server in
  (* ---- verification (faults disarmed) ---- *)
  let all = !responses in
  let scheduled =
    List.filter_map
      (fun (_, b, r) ->
        match r with Daemon.Protocol.Scheduled x -> Some (b, x) | _ -> None)
      all
  in
  let rejected =
    List.length
      (List.filter (function _, _, Daemon.Protocol.Rejected _ -> true | _ -> false) all)
  in
  let failed =
    List.length
      (List.filter (function _, _, Daemon.Protocol.Failed _ -> true | _ -> false) all)
  in
  (* zero wrong-schedule serves: re-parse and re-certify every response *)
  let wrong = ref 0 in
  List.iter
    (fun (_, (x : Daemon.Protocol.scheduled)) ->
      List.iter
        (fun (l : Daemon.Protocol.served_layer) ->
          if l.Daemon.Protocol.verdict <> "ok" then incr wrong
          else
            match Mapping_io.record_of_string l.Daemon.Protocol.record with
            | Error _ -> incr wrong
            | Ok (_, mapping) ->
              (match Certify.Mapping_cert.check Spec.baseline mapping with
               | Certify.Certificate.Certified -> ()
               | Certify.Certificate.Violated _ -> incr wrong))
        x.Daemon.Protocol.layers)
    scheduled;
  let burst_serve =
    List.filter_map
      (fun (b, (x : Daemon.Protocol.scheduled)) ->
        if b = burst_budget then Some x.Daemon.Protocol.serve_s else None)
      scheduled
  in
  let p95_burst =
    match burst_serve with [] -> 0. | l -> Prim.Stats.percentile 95. l
  in
  Printf.printf
    "seed %d: %d responses (%d scheduled, %d rejected, %d failed), %d faults fired, \
     p95 burst serve %.3fs, drain persisted %d\n"
    seed (List.length all) (List.length scheduled) rejected failed fired p95_burst
    s.Daemon.Server.persisted;
  soak_check (fired > 0) "faults actually fired during the soak";
  soak_check (!wrong = 0) "zero wrong-schedule serves (all responses re-certified)";
  soak_check (failed = 0) "no Failed responses under fault-injected overload";
  soak_check (!client_errors = 0) "no client-side protocol errors";
  soak_check (rejected > 0) "load step produced typed rejections (backpressure)";
  soak_check
    (s.Daemon.Server.rejected_queue_full + s.Daemon.Server.rejected_shedding
     + s.Daemon.Server.rejected_deadline > 0)
    "server counted its rejections by reason";
  soak_check
    (p95_burst <= (burst_budget *. 1.25) +. 0.1)
    "p95 serve time of admitted burst requests within SLO";
  soak_check
    (s.Daemon.Server.served + s.Daemon.Server.failed
     + s.Daemon.Server.rejected_queue_full + s.Daemon.Server.rejected_quota
     + s.Daemon.Server.rejected_shedding + s.Daemon.Server.rejected_deadline
    = s.Daemon.Server.received)
    "drain accounting balances (every request answered exactly once)";
  soak_check (s.Daemon.Server.persisted > 0) "drain persisted the schedule cache";
  (match all with
   | (_, _, Daemon.Protocol.Scheduled _) :: _ ->
     (* responses are newest-first: the post-step generous request *)
     soak_check true "server recovered after the load step"
   | _ -> soak_check false "server recovered after the load step");
  (* warm restart: the drained cache must serve the soaked shapes back *)
  let server2 = make_server () in
  let t2 = Daemon.Server.start server2 in
  Daemon.Server.wait_ready server2;
  let from_cache = ref 0 and restart_wrong = ref 0 in
  (match Daemon.Client.connect sock with
   | Error e -> failwith ("soak: restart connect: " ^ e)
   | Ok c ->
     List.iter
       (fun l ->
         match send c warm_budget l with
         | Ok (Daemon.Protocol.Scheduled x) ->
           List.iter
             (fun (sl : Daemon.Protocol.served_layer) ->
               if String.length sl.Daemon.Protocol.origin >= 5
                  && String.sub sl.Daemon.Protocol.origin 0 5 = "cache"
               then incr from_cache;
               if sl.Daemon.Protocol.verdict <> "ok" then incr restart_wrong)
             x.Daemon.Protocol.layers
         | _ -> incr restart_wrong)
       soak_layers;
     Daemon.Client.close c);
  Daemon.Server.shutdown server2;
  Thread.join t2;
  soak_check
    (!from_cache = List.length soak_layers && !restart_wrong = 0)
    "warm restart served every soaked shape from the persisted cache";
  rm_rf cache_dir;
  (* satellite: the round's final telemetry snapshot (counters reset at
     round start) rides into BENCH_results.json next to the checks *)
  Printf.sprintf
    "{\"seed\":%d,\"responses\":%d,\"scheduled\":%d,\"rejected\":%d,\"failed\":%d,\
     \"faults_fired\":%d,\"p95_burst_s\":%s,\"persisted\":%d,\"wrong\":%d,\
     \"restart_from_cache\":%d,\"telemetry\":%s}"
    seed (List.length all) (List.length scheduled) rejected failed fired
    (json_float p95_burst) s.Daemon.Server.persisted !wrong !from_cache
    (Telemetry.Export.metrics_json (Telemetry.Metrics.snapshot ()))

let soak_benchmarks () =
  print_newline ();
  print_endline "Daemon soak: fault-injected mixed traffic, typed backpressure, drain";
  print_endline "====================================================================";
  Telemetry.Sink.set Telemetry.Sink.Null;
  let rounds = List.map soak_round soak_seeds in
  soak_result :=
    Some
      (Printf.sprintf "{\"fault_rate\":%s,\"rounds\":[%s]}"
         (json_float soak_fault_rate)
         (String.concat "," rounds));
  if !soak_failures > 0 then begin
    Printf.printf "soak: %d acceptance checks FAILED\n" !soak_failures;
    write_results "BENCH_results.json";
    exit 1
  end;
  flush stdout

(* ---- multi-process cluster soak --------------------------------------- *)
(* Chaos soak of the fault-tolerant multi-host tier. Two parts:

   [A] In-process: a daemon on the sharded, thread-safe cache tier must
   answer cache hits inline on connection threads while the (single)
   solver thread is pinned by a cold solve — cache throughput is no
   longer serialized through the solver — and the hits must spread over
   multiple shards.

   [B] Multi-process, per fault seed: two [cosa_cli serve] processes are
   spawned (exec'd, never forked — the bench parent has run threads) on
   TCP with cross-wired --peer lists and network+solver fault injection;
   one of them opts into crash-exit faults. After warming one server, the
   other must serve via its warm peer ("cache(peer)"); a mixed-budget
   threaded load using client failover then survives a SIGKILL of the
   crashy server with zero terminal transport errors, typed rejections
   from cache-only probes of a cold shape, and zero wrong-schedule serves
   (every response re-certified in exact arithmetic here, in the
   parent). The killed server restarts on its persisted cache and serves
   everything all-cache; both survivors drain cleanly; shard files land
   where the content-addressed placement says they must. *)

let cluster_seeds = [ 101; 202; 303 ]
let cluster_fault_rate = 0.02

(* A and B keep the non-fatal network faults (plus solver faults); the
   crash-exit site is exercised by a dedicated server C at a high rate so
   the crash is (near-)certain rather than seed-luck, and the deliberate
   peer-kill of B stays a SIGKILL. *)
let cluster_fault_sites =
  String.concat ","
    [ "simplex.pivot"; "bb.node"; "sampler.valid"; "cosa.warm"; "net.conn_reset";
      "net.partial_frame"; "net.slow_peer" ]

let cluster_layers = soak_layers

(* never warmed: a cache-only probe for it is a guaranteed typed rejection *)
let cluster_cold_layer = "fc1000"
let cluster_slow_layer = "ocr_3072_1500_1024"
let cluster_shards = 4

let cli_binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "cosa_cli.exe"))

(* Requests at a generous budget run at the Joint rung, and fresh solves
   are stored under the solving strategy's key — so placement predictions
   use the Joint fingerprint. *)
let cluster_joint_fp =
  let service =
    lazy (Serve.Service.config ~strategy:Cosa.Joint ~certify:Cosa.Strict Spec.baseline)
  in
  fun name -> Serve.Service.request_fingerprint (Lazy.force service) (Zoo.find name)

(* mirrors Cluster.Sharded_cache's content-addressed placement *)
let cluster_shard_of fp =
  int_of_string ("0x" ^ String.sub (Serve.Fingerprint.hash fp) 0 8) mod cluster_shards

let rec find_sub s sub i =
  if i + String.length sub > String.length s then None
  else if String.sub s i (String.length sub) = sub then Some i
  else find_sub s sub (i + 1)

let contains s sub = find_sub s sub 0 <> None

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all with Sys_error _ -> ""

(* First integer after [name] in [text]; 0 when absent (the metrics report
   omits zero counters). *)
let counter_in_log text name =
  match find_sub text name 0 with
  | None -> 0
  | Some i ->
    let n = String.length text in
    let j = ref (i + String.length name) in
    while !j < n && not (text.[!j] >= '0' && text.[!j] <= '9') do incr j done;
    let k = ref !j in
    while !k < n && text.[!k] >= '0' && text.[!k] <= '9' do incr k done;
    if !j < n then int_of_string (String.sub text !j (!k - !j)) else 0

let alloc_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt s Unix.SO_REUSEADDR true;
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close s;
  port

let spawn_server ~log args =
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process cli_binary (Array.of_list (cli_binary :: args)) Unix.stdin fd fd
  in
  Unix.close fd;
  pid

let wait_tcp port ~timeout_s =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match
      Daemon.Client.connect_ep ~timeout_s:0.5 (Daemon.Client.Tcp ("127.0.0.1", port))
    with
    | Ok c ->
      Daemon.Client.close c;
      true
    | Error _ ->
      if Unix.gettimeofday () -. t0 > timeout_s then false
      else begin
        Thread.delay 0.1;
        go ()
      end
  in
  go ()

let term_and_wait pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error _ -> Unix.WEXITED 127

let serve_args ?(rate = cluster_fault_rate) ?(sites = cluster_fault_sites) ~sock
    ~port ~peer_port ~cache_dir ~seed ~crash ~faults () =
  [ "serve"; "--socket"; sock; "--tcp"; Printf.sprintf "127.0.0.1:%d" port;
    "--cache-dir"; cache_dir; "--shards"; string_of_int cluster_shards;
    "--cache-size"; "64"; "--peer"; Printf.sprintf "127.0.0.1:%d" peer_port;
    "--certify"; "strict"; "--strategy"; "auto"; "--time-limit"; "0.6"; "--jobs"; "2";
    "--queue-capacity"; "8"; "--default-budget"; "10"; "--node-limit"; "2000";
    "--metrics" ]
  @ (if faults then
       [ "--fault-seed"; string_of_int seed; "--fault-rate"; string_of_float rate;
         "--fault-sites"; sites ]
     else [])
  @ if crash then [ "--fault-crash" ] else []

(* [A] sharded tier: cache hits bypass the busy solver thread. *)
let cluster_fastpath_check () =
  print_endline "  [A] sharded cache tier: hits answer while the solver is busy";
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cosa_cluster_fp_%d.sock" (Unix.getpid ()))
  in
  let sharded = Cluster.Sharded_cache.create ~capacity:64 ~shards:cluster_shards () in
  let service =
    Serve.Service.config ~strategy:Cosa.Auto ~certify:Cosa.Strict ~node_limit:2_000
      ~time_limit:1.5 ~jobs:1 Spec.baseline
  in
  let admission =
    Daemon.Admission.default_config ~queue_capacity:16 ~min_samples:4 ~time_limit:1.5 ()
  in
  let server =
    Daemon.Server.create
      (Daemon.Server.config ~admission ~default_budget_s:10.
         ~tier:(Cluster.Sharded_cache.tier sharded) ~socket_path:sock service)
  in
  let th = Daemon.Server.start server in
  Daemon.Server.wait_ready server;
  let req ?(cache_only = false) layer =
    { Daemon.Protocol.client = ""; budget_s = 10.; arch = "baseline";
      target = Daemon.Protocol.Layer layer; cache_only; req_id = 0L; hop = 0 }
  in
  List.iter
    (fun l -> ignore (Daemon.Server.process_request server (req l)))
    cluster_layers;
  let slow_wall = ref 0. in
  let slow =
    Thread.create
      (fun () ->
        let t0 = Unix.gettimeofday () in
        ignore (Daemon.Server.process_request server (req cluster_slow_layer));
        slow_wall := Unix.gettimeofday () -. t0)
      ()
  in
  Thread.delay 0.1;
  let wl = Mutex.create () in
  let walls = ref [] and not_cached = ref 0 in
  let threads =
    List.init 12 (fun i ->
        Thread.create
          (fun () ->
            let layer = List.nth cluster_layers (i mod List.length cluster_layers) in
            let t0 = Unix.gettimeofday () in
            let r = Daemon.Server.process_request server (req ~cache_only:true layer) in
            let dt = Unix.gettimeofday () -. t0 in
            Mutex.protect wl (fun () ->
                walls := dt :: !walls;
                match r with
                | Daemon.Protocol.Scheduled _ -> ()
                | _ -> incr not_cached))
          ())
  in
  List.iter Thread.join threads;
  Thread.join slow;
  Daemon.Server.shutdown server;
  Thread.join th;
  let max_wall = List.fold_left Float.max 0. !walls in
  let stats = Daemon.Server.stats server in
  let shard_hits =
    List.init cluster_shards (fun i ->
        let st = Cluster.Sharded_cache.shard_stats sharded i in
        st.Serve.Schedule_cache.hits + st.Serve.Schedule_cache.disk_hits)
  in
  let shards_hit = List.length (List.filter (fun h -> h > 0) shard_hits) in
  soak_check (!not_cached = 0) "[A] all 12 concurrent cache-only probes hit";
  soak_check (!slow_wall > 0.3) "[A] cold solve pinned the solver thread meanwhile";
  soak_check
    (max_wall < 0.75 *. !slow_wall)
    "[A] cache hits were not serialized behind the solver thread";
  soak_check
    (stats.Daemon.Server.fastpath_served >= 12)
    "[A] hits were served on the connection fast path";
  soak_check (shards_hit >= 2) "[A] hits spread across multiple shards";
  Printf.sprintf
    "{\"slow_wall_s\":%s,\"max_hit_wall_s\":%s,\"fastpath_served\":%d,\
     \"shard_hits\":[%s]}"
    (json_float !slow_wall) (json_float max_wall) stats.Daemon.Server.fastpath_served
    (String.concat "," (List.map string_of_int shard_hits))

(* [B] one two-process chaos round under one fault seed. *)
let cluster_round seed =
  Printf.printf "  [B] chaos round, seed %d\n%!" seed;
  let tmp = Filename.get_temp_dir_name () in
  let tag = Printf.sprintf "cosa_cluster_%d_%d" (Unix.getpid ()) seed in
  let cache_a = Filename.concat tmp (tag ^ "_a") in
  let cache_b = Filename.concat tmp (tag ^ "_b") in
  rm_rf cache_a;
  rm_rf cache_b;
  let sock_a = Filename.concat tmp (tag ^ "_a.sock") in
  let sock_b = Filename.concat tmp (tag ^ "_b.sock") in
  let log_a = Filename.concat tmp (tag ^ "_a.log") in
  let log_b = Filename.concat tmp (tag ^ "_b.log") in
  let log_b2 = Filename.concat tmp (tag ^ "_b2.log") in
  let port_a = alloc_port () and port_b = alloc_port () in
  let ep_a = Daemon.Client.Tcp ("127.0.0.1", port_a) in
  let ep_b = Daemon.Client.Tcp ("127.0.0.1", port_b) in
  let pid_a =
    spawn_server ~log:log_a
      (serve_args ~sock:sock_a ~port:port_a ~peer_port:port_b ~cache_dir:cache_a ~seed
         ~crash:false ~faults:true ())
  in
  let pid_b =
    spawn_server ~log:log_b
      (serve_args ~sock:sock_b ~port:port_b ~peer_port:port_a ~cache_dir:cache_b
         ~seed:(seed + 1) ~crash:false ~faults:true ())
  in
  soak_check (wait_tcp port_a ~timeout_s:20.) "[B] server A listening on TCP";
  soak_check (wait_tcp port_b ~timeout_s:20.) "[B] server B listening on TCP";
  let resp_lock = Mutex.create () in
  let transport_errors = ref 0
  and failed = ref 0
  and rejected = ref 0
  and peer_served = ref 0 in
  let scheduled : Daemon.Protocol.scheduled list ref = ref [] in
  let send ?(cache_only = false) ~endpoints layer =
    let r =
      Daemon.Client.request_failover ~retries:4 ~backoff_s:0.05 ~timeout_s:10.
        ~endpoints
        { Daemon.Protocol.client = ""; budget_s = 10.; arch = "baseline";
          target = Daemon.Protocol.Layer layer; cache_only; req_id = 0L; hop = 0 }
    in
    Mutex.protect resp_lock (fun () ->
        match r with
        | Error _ | Ok (Daemon.Protocol.Stats _) -> incr transport_errors
        | Ok (Daemon.Protocol.Failed _) -> incr failed
        | Ok (Daemon.Protocol.Rejected _) -> incr rejected
        | Ok (Daemon.Protocol.Scheduled x) ->
          scheduled := x :: !scheduled;
          List.iter
            (fun (l : Daemon.Protocol.served_layer) ->
              if l.Daemon.Protocol.origin = "cache(peer)" then incr peer_served)
            x.Daemon.Protocol.layers)
  in
  (* phase 1: warm A (generous budgets: Joint solves, write-through stores) *)
  List.iter (fun l -> send ~endpoints:[ ep_a ] l) cluster_layers;
  (* phase 2: B answers the same shapes via its warm peer *)
  List.iter (fun l -> send ~endpoints:[ ep_b; ep_a ] l) cluster_layers;
  let peer_after_warm = Mutex.protect resp_lock (fun () -> !peer_served) in
  (* phase 3a: a crash-exit server C joins and dies by an injected
     net.peer_crash mid-response (rate 0.9 makes the crash near-certain);
     the client's failover absorbs the torn frame *)
  let cache_c = Filename.concat tmp (tag ^ "_c") in
  rm_rf cache_c;
  let sock_c = Filename.concat tmp (tag ^ "_c.sock") in
  let log_c = Filename.concat tmp (tag ^ "_c.log") in
  let port_c = alloc_port () in
  let ep_c = Daemon.Client.Tcp ("127.0.0.1", port_c) in
  let pid_c =
    spawn_server ~log:log_c
      (serve_args ~sock:sock_c ~port:port_c ~peer_port:port_a ~cache_dir:cache_c
         ~seed:(seed + 2) ~crash:true ~faults:true ~rate:0.9 ~sites:"net.peer_crash" ())
  in
  soak_check (wait_tcp port_c ~timeout_s:20.) "[B] crash-exit server C listening";
  for _ = 1 to 6 do
    send ~cache_only:true ~endpoints:[ ep_c; ep_a ] cluster_cold_layer
  done;
  let st_c =
    let deadline = Unix.gettimeofday () +. 10. in
    let rec reap () =
      match Unix.waitpid [ Unix.WNOHANG ] pid_c with
      | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid_c Sys.sigkill with Unix.Unix_error _ -> ());
          snd (Unix.waitpid [] pid_c)
        end
        else begin
          Thread.delay 0.05;
          reap ()
        end
      | _, st -> st
      | exception Unix.Unix_error _ -> Unix.WEXITED 127
    in
    reap ()
  in
  soak_check
    (st_c = Unix.WEXITED 42)
    "[B] injected peer-crash tore server C down mid-response (exit 42)";
  (* phase 3b: mixed threaded load with failover; SIGKILL B mid-load *)
  let killer =
    Thread.create
      (fun () ->
        Thread.delay 0.4;
        try Unix.kill pid_b Sys.sigkill with Unix.Unix_error _ -> ())
      ()
  in
  let load =
    List.init 6 (fun i ->
        Thread.create
          (fun () ->
            let rng = Prim.Rng.create ((seed * 131) + i) in
            for j = 1 to 6 do
              let endpoints =
                if (i + j) mod 2 = 0 then [ ep_a; ep_b ] else [ ep_b; ep_a ]
              in
              if j mod 3 = 0 then send ~cache_only:true ~endpoints cluster_cold_layer
              else send ~endpoints (Prim.Rng.pick rng cluster_layers);
              Thread.delay 0.05
            done)
          ())
  in
  List.iter Thread.join load;
  Thread.join killer;
  (try ignore (Unix.waitpid [] pid_b) with Unix.Unix_error _ -> ());
  (* phase 4: restart B on its persisted cache, no faults *)
  let pid_b2 =
    spawn_server ~log:log_b2
      (serve_args ~sock:sock_b ~port:port_b ~peer_port:port_a ~cache_dir:cache_b
         ~seed:0 ~crash:false ~faults:false ())
  in
  soak_check
    (wait_tcp port_b ~timeout_s:20.)
    "[B] killed server restarted on its persisted cache";
  let restart_cache = ref 0 and restart_bad = ref 0 in
  List.iter
    (fun l ->
      match
        Daemon.Client.request_failover ~retries:4 ~backoff_s:0.05 ~timeout_s:10.
          ~endpoints:[ ep_b ]
          { Daemon.Protocol.client = ""; budget_s = 10.; arch = "baseline";
            target = Daemon.Protocol.Layer l; cache_only = false; req_id = 0L;
            hop = 0 }
      with
      | Ok (Daemon.Protocol.Scheduled x) ->
        Mutex.protect resp_lock (fun () -> scheduled := x :: !scheduled);
        List.iter
          (fun (sl : Daemon.Protocol.served_layer) ->
            if
              String.length sl.Daemon.Protocol.origin >= 5
              && String.sub sl.Daemon.Protocol.origin 0 5 = "cache"
            then incr restart_cache
            else incr restart_bad;
            if sl.Daemon.Protocol.verdict <> "ok" then incr restart_bad)
          x.Daemon.Protocol.layers
      | _ -> incr restart_bad)
    cluster_layers;
  (* live introspection over the wire before the drain: each surviving
     daemon's final stats snapshot rides into BENCH_results.json *)
  let live_snapshot ep =
    match Daemon.Client.stats_ep ~timeout_s:5. ep Daemon.Protocol.Stats_full with
    | Ok payload -> payload
    | Error _ -> "null"
  in
  let snap_a = live_snapshot ep_a in
  let snap_b2 = live_snapshot ep_b in
  soak_check
    (contains snap_a "\"snapshot_version\"" && contains snap_a "\"shards\"")
    "[B] server A answered a live stats snapshot (with shard sections)";
  soak_check
    (contains snap_b2 "\"snapshot_version\"")
    "[B] restarted server B answered a live stats snapshot";
  (* drains *)
  let st_a = term_and_wait pid_a in
  let st_b2 = term_and_wait pid_b2 in
  let text_a = read_file log_a in
  let text_b2 = read_file log_b2 in
  (* re-certify every scheduled record: zero wrong serves, ever *)
  let wrong = ref 0 in
  List.iter
    (fun (x : Daemon.Protocol.scheduled) ->
      List.iter
        (fun (l : Daemon.Protocol.served_layer) ->
          if l.Daemon.Protocol.verdict <> "ok" then incr wrong
          else
            match Mapping_io.record_of_string l.Daemon.Protocol.record with
            | Error _ -> incr wrong
            | Ok (_, mapping) ->
              (match Certify.Mapping_cert.check Spec.baseline mapping with
               | Certify.Certificate.Certified -> ()
               | Certify.Certificate.Violated _ -> incr wrong))
        x.Daemon.Protocol.layers)
    !scheduled;
  (* content-addressed placement: every warmed layer's record must sit in
     its owning shard directory on A *)
  let shards_used = Hashtbl.create 8 in
  let missing =
    List.filter
      (fun name ->
        let fp = cluster_joint_fp name in
        let sh = cluster_shard_of fp in
        Hashtbl.replace shards_used sh ();
        not
          (Sys.file_exists
             (Filename.concat cache_a
                (Filename.concat
                   (Printf.sprintf "shard-%02d" sh)
                   (Serve.Fingerprint.hash fp ^ ".cosa")))))
      cluster_layers
  in
  let b_files =
    List.init cluster_shards (fun i ->
        let d = Filename.concat cache_b (Printf.sprintf "shard-%02d" i) in
        match Sys.readdir d with
        | entries ->
          Array.fold_left
            (fun acc e -> if Filename.check_suffix e ".cosa" then acc + 1 else acc)
            0 entries
        | exception Sys_error _ -> 0)
    |> List.fold_left ( + ) 0
  in
  soak_check (!transport_errors = 0)
    "[B] zero terminal transport errors (failover absorbed the kill)";
  soak_check (!failed = 0) "[B] no Failed responses";
  soak_check (!rejected > 0) "[B] cache-only probes of a cold shape typed-rejected";
  soak_check (peer_after_warm > 0) "[B] warm peer served cache(peer) hits";
  soak_check (!wrong = 0) "[B] zero wrong-schedule serves (all re-certified)";
  soak_check
    (!restart_cache = List.length cluster_layers && !restart_bad = 0)
    "[B] restarted server answered every shape all-cache";
  soak_check (st_a = Unix.WEXITED 0) "[B] server A drained with exit 0";
  soak_check (st_b2 = Unix.WEXITED 0) "[B] restarted server B drained with exit 0";
  soak_check (contains text_a "drained:") "[B] A printed its drain summary";
  soak_check (contains text_b2 "drained:") "[B] restarted B printed its drain summary";
  soak_check (counter_in_log text_a "faults fired:" > 0) "[B] faults fired on A";
  soak_check (missing = []) "[B] every warmed layer persisted in its owning shard";
  soak_check (Hashtbl.length shards_used >= 2) "[B] warmed layers span multiple shards";
  soak_check (b_files > 0) "[B] SIGKILLed B left write-through shard files behind";
  let peer_probes_b2 = counter_in_log text_b2 "cluster.peer_probes" in
  let frag =
    Printf.sprintf
      "{\"seed\":%d,\"scheduled\":%d,\"rejected\":%d,\"failed\":%d,\
       \"transport_errors\":%d,\"peer_served\":%d,\"wrong\":%d,\
       \"restart_all_cache\":%b,\"a_faults_fired\":%d,\"b_shard_files\":%d,\
       \"b2_peer_probes\":%d,\"a_snapshot\":%s,\"b2_snapshot\":%s}"
      seed
      (List.length !scheduled)
      !rejected !failed !transport_errors !peer_served !wrong
      (!restart_cache = List.length cluster_layers && !restart_bad = 0)
      (counter_in_log text_a "faults fired:")
      b_files peer_probes_b2 snap_a snap_b2
  in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ sock_a; sock_b; sock_c; log_a; log_b; log_b2; log_c ];
  rm_rf cache_a;
  rm_rf cache_b;
  rm_rf cache_c;
  frag

let soak_cluster_benchmarks ?only_seed () =
  print_newline ();
  print_endline
    "Cluster soak: sharded cache, TCP failover, warm peers, network faults";
  print_endline
    "=====================================================================";
  if not (Sys.file_exists cli_binary) then begin
    Printf.printf
      "  SKIP cluster soak: %s not built (run `dune build bin/cosa_cli.exe`)\n"
      cli_binary;
    soak_cluster_result := Some "{\"skipped\":true}"
  end
  else begin
    (* the parent's own telemetry captures the client-side counters *)
    Telemetry.Sink.set Telemetry.Sink.Memory;
    Telemetry.Metrics.reset ();
    let fastpath = cluster_fastpath_check () in
    let seeds =
      match only_seed with Some s -> [ s ] | None -> cluster_seeds
    in
    let rounds = List.map cluster_round seeds in
    let snap = Telemetry.Metrics.snapshot () in
    let failovers = Telemetry.Metrics.counter_value snap "cluster.failovers" in
    soak_check (failovers > 0) "[B] client failed over after the peer kill";
    soak_cluster_result :=
      Some
        (Printf.sprintf
           "{\"fault_rate\":%s,\"fastpath\":%s,\"rounds\":[%s],\
            \"client_telemetry\":%s}"
           (json_float cluster_fault_rate) fastpath (String.concat "," rounds)
           (snapshot_json snap));
    Telemetry.Metrics.reset ();
    Telemetry.Sink.set Telemetry.Sink.Null;
    if !soak_failures > 0 then begin
      Printf.printf "cluster soak: %d acceptance checks FAILED\n" !soak_failures;
      write_results "BENCH_results.json";
      exit 1
    end
  end;
  flush stdout

(* Cross-layer fusion sweep: the lib/fuse acceptance gate.

   Plans every derived chain of the fusion-candidate networks and of full
   ResNet-50 under the Chains mode, then:

   - re-certifies every fused group here, in the bench, by rebuilding the
     claim from the plan and replaying it through Certify.Fuse_cert (the
     planner already refuses to serve an uncertified fusion; this check
     makes the bench independently sure of it);
   - gates the designated ResNet-50 chains (the deep stem and the conv2_x
     bottleneck block) on >= 20% off-chip savings vs the independent
     per-layer sum;
   - validates the claimed savings through the cycle-level banked DRAM
     model: the fused and independent access traces of the bottleneck
     block are replayed through Dram_model and the fused stream must keep
     the DRAM busy for strictly fewer cycles. *)

let fuse_gate_pct = 20.

(* Replay a transfer trace through the FR-FCFS DRAM model. Transfers
   become 64 B burst requests walking consecutive rows of their region
   (regions are spread far apart so distinct tensors never share a row);
   pacing keeps a bounded number of requests outstanding, like the NoC
   front end would. One word = one byte (the quantized DRAM format of the
   8-bit tensors); both traces use the same convention, so the comparison
   is apples-to-apples. *)
let dram_replay (arch : Spec.t) (transfers : Fuse.Plan.transfer list) =
  let d = Dram_model.create arch.Spec.dram in
  let row_bytes = arch.Spec.dram.Spec.row_bytes in
  let burst = arch.Spec.dram.Spec.burst_bytes in
  let cursors = Hashtbl.create 16 in
  let outstanding = ref 0 in
  let drain_to limit =
    while !outstanding > limit do
      Dram_model.step d;
      outstanding := !outstanding - List.length (Dram_model.completed d)
    done
  in
  List.iter
    (fun (t : Fuse.Plan.transfer) ->
      let base = t.Fuse.Plan.t_region * 1_048_576 in
      let cur = try Hashtbl.find cursors t.Fuse.Plan.t_region with Not_found -> 0 in
      let bytes = ref t.Fuse.Plan.t_words and off = ref cur in
      while !bytes > 0 do
        let b = min burst !bytes in
        ignore (Dram_model.request d ~bytes:b ~row:(base + (!off / row_bytes)));
        incr outstanding;
        drain_to 32;
        bytes := !bytes - b;
        off := !off + b
      done;
      Hashtbl.replace cursors t.Fuse.Plan.t_region !off)
    transfers;
  drain_to 0;
  (Dram_model.total_busy_cycles d, Dram_model.row_hit_count d,
   Dram_model.row_miss_count d)

let fuse_benchmarks () =
  print_newline ();
  print_endline "Cross-layer fusion: certified fused vs independent off-chip traffic";
  print_endline "===================================================================";
  soak_failures := 0;
  Telemetry.Sink.set Telemetry.Sink.Memory;
  Telemetry.Metrics.reset ();
  let arch = Spec.baseline in
  (* (network, gated): gated networks are the designated ResNet-50 chains
     the >= 20% acceptance criterion applies to *)
  let nets =
    [ (Network.resnet50_stem, true); (Network.resnet50_block, true);
      (Network.resnet50, false) ]
  in
  let recert_failures = ref 0 in
  let net_frags =
    List.map
      (fun ((net : Network.t), gated) ->
        let plan = Fuse.Plan.plan_network ~mode:Fuse.Plan.Chains arch net in
        print_string (Fuse.Plan.network_plan_to_string plan);
        let fused, degraded =
          List.partition
            (fun (gp : Fuse.Plan.group_plan) ->
              match gp.Fuse.Plan.g_outcome with
              | Fuse.Plan.Fused _ -> true
              | Fuse.Plan.Independent _ -> false)
            plan.Fuse.Plan.p_groups
        in
        (* independent bench-side re-certification of every fused group *)
        List.iter
          (fun (gp : Fuse.Plan.group_plan) ->
            match gp.Fuse.Plan.g_outcome with
            | Fuse.Plan.Independent _ -> ()
            | Fuse.Plan.Fused f ->
              let keep = Array.of_list f.Fuse.Plan.f_keep in
              let wres = Array.of_list f.Fuse.Plan.f_wres in
              let claim =
                {
                  Certify.Fuse_cert.f_arch = arch;
                  f_members =
                    List.mapi
                      (fun j l ->
                        { Certify.Fuse_cert.m_layer = l;
                          m_keep_output =
                            j < Array.length keep && keep.(j);
                          m_weights_resident = wres.(j) })
                      gp.Fuse.Plan.g_group.Fuse.Chain.members;
                  f_bands = f.Fuse.Plan.f_bands;
                  f_gb_reserve_bytes = f.Fuse.Plan.f_gb_reserve_bytes;
                  f_peak_gb_bytes = f.Fuse.Plan.f_peak_gb_bytes;
                  f_dram_words = f.Fuse.Plan.f_dram_words;
                }
              in
              (match Certify.Fuse_cert.check claim with
               | Certify.Certificate.Certified -> ()
               | Certify.Certificate.Violated _ -> incr recert_failures))
          plan.Fuse.Plan.p_groups;
        (* savings over the chain-covered subset *)
        let chain_ind =
          List.fold_left
            (fun acc (gp : Fuse.Plan.group_plan) ->
              acc + (gp.Fuse.Plan.g_group.Fuse.Chain.count * gp.Fuse.Plan.g_independent_words))
            0 plan.Fuse.Plan.p_groups
        in
        let chain_saved =
          List.fold_left
            (fun acc gp ->
              acc
              + (gp.Fuse.Plan.g_group.Fuse.Chain.count * Fuse.Plan.group_savings gp))
            0 plan.Fuse.Plan.p_groups
        in
        let savings_pct =
          if chain_ind = 0 then 0.
          else 100. *. float_of_int chain_saved /. float_of_int chain_ind
        in
        Printf.printf "%s chains: %.1f%% off-chip savings%s\n\n" net.Network.nname
          savings_pct
          (if gated then Printf.sprintf " (acceptance: >= %.0f%%)" fuse_gate_pct
           else "");
        soak_check
          (List.length fused >= 1)
          (Printf.sprintf "%s: at least one chain fused" net.Network.nname);
        if gated then
          soak_check (savings_pct >= fuse_gate_pct)
            (Printf.sprintf "%s: fused off-chip >= %.0f%% below independent"
               net.Network.nname fuse_gate_pct);
        Printf.sprintf
          "{\"name\":\"%s\",\"groups\":%d,\"fused\":%d,\"degraded\":%d,\
           \"chain_independent_words\":%d,\"chain_fused_words\":%d,\
           \"savings_pct\":%s,\"network_independent_words\":%d,\
           \"network_fused_words\":%d,\"gated\":%b}"
          (json_escape net.Network.nname)
          (List.length plan.Fuse.Plan.p_groups)
          (List.length fused) (List.length degraded) chain_ind
          (chain_ind - chain_saved) (json_float savings_pct)
          plan.Fuse.Plan.p_independent_dram_words plan.Fuse.Plan.p_fused_dram_words
          gated)
      nets
  in
  soak_check (!recert_failures = 0)
    "every served fused schedule re-certified in exact arithmetic";
  (* DRAM-model validation on the bottleneck block *)
  let block_plan =
    Fuse.Plan.plan_network ~mode:Fuse.Plan.Chains arch Network.resnet50_block
  in
  let dram_frag =
    match block_plan.Fuse.Plan.p_groups with
    | ({ Fuse.Plan.g_outcome = Fuse.Plan.Fused f; g_group; _ } as _gp) :: _ ->
      let fused_busy, fh, fm =
        dram_replay arch (Fuse.Plan.fused_trace g_group f)
      in
      let ind_busy, ih, im = dram_replay arch (Fuse.Plan.independent_trace g_group) in
      Printf.printf
        "DRAM model (bottleneck block): independent %d busy cycles (%d hits/%d \
         misses), fused %d busy cycles (%d hits/%d misses)\n"
        ind_busy ih im fused_busy fh fm;
      soak_check (fused_busy < ind_busy)
        "DRAM model: fused stream strictly fewer busy cycles than independent";
      Printf.sprintf
        "{\"independent_busy_cycles\":%d,\"fused_busy_cycles\":%d,\
         \"independent_row_hits\":%d,\"independent_row_misses\":%d,\
         \"fused_row_hits\":%d,\"fused_row_misses\":%d}"
        ind_busy fused_busy ih im fh fm
    | _ ->
      soak_check false "DRAM model: bottleneck block produced a fused plan";
      "{}"
  in
  fuse_result :=
    Some
      (Printf.sprintf
         "{\"gate_pct\":%s,\"networks\":[%s],\"dram_sim\":%s,\"telemetry\":%s}"
         (json_float fuse_gate_pct)
         (String.concat "," net_frags)
         dram_frag
         (snapshot_json (Telemetry.Metrics.snapshot ())));
  Telemetry.Metrics.reset ();
  Telemetry.Sink.set Telemetry.Sink.Null;
  if !soak_failures > 0 then begin
    Printf.printf "fuse: %d acceptance checks FAILED\n" !soak_failures;
    write_results "BENCH_results.json";
    exit 1
  end;
  flush stdout

(* Warm-start sweep: the warm-started-dual-simplex acceptance gate. Every
   distinct ResNet-50 shape is scheduled node-bound (deterministic) twice —
   --warm-start on and off — under identical budgets. Warm starting must
   only change how fast each node LP solves, never the search itself, so
   the gate demands byte-identical schedules, objectives, and node counts,
   then reports the iteration economics (phase1+phase2+dual totals) and
   the fraction of non-root node LPs served by dual reoptimization. *)
let warm_sweep () =
  print_newline ();
  print_endline "Warm-start sweep: node-bound ResNet-50, warm vs cold node LPs";
  print_endline "=============================================================";
  Telemetry.Sink.set Telemetry.Sink.Memory;
  let arch = Spec.baseline in
  let shapes = Network.distinct Network.resnet50 in
  let iter_counters =
    [ "simplex.phase1_iterations"; "simplex.phase2_iterations";
      "simplex.dual_iterations" ]
  in
  let run ~warm_start =
    Telemetry.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let results =
      List.map
        (fun ((e : Network.entry), _) ->
          Cosa.schedule ~strategy:Cosa.Two_stage ~node_limit:3_000 ~time_limit:60.
            ~warm_start arch e.Network.layer)
        shapes
    in
    let wall = Unix.gettimeofday () -. t0 in
    let snap = Telemetry.Metrics.snapshot () in
    let cv = Telemetry.Metrics.counter_value snap in
    let schedules =
      List.map (fun (r : Cosa.result) -> Mapping_io.to_string r.Cosa.mapping) results
    in
    let objectives =
      List.map (fun (r : Cosa.result) -> r.Cosa.objective.Cosa.total) results
    in
    let iters = List.fold_left (fun acc c -> acc + cv c) 0 iter_counters in
    (wall, snap, schedules, objectives, cv "bb.nodes", iters)
  in
  let w_wall, w_snap, w_scheds, w_objs, w_nodes, w_iters = run ~warm_start:true in
  let c_wall, c_snap, c_scheds, c_objs, c_nodes, c_iters = run ~warm_start:false in
  let wcv = Telemetry.Metrics.counter_value w_snap in
  let warm_nodes = wcv "bb.warm_nodes" and cold_nodes = wcv "bb.cold_nodes" in
  let warm_rate =
    if warm_nodes + cold_nodes = 0 then 0.
    else float_of_int warm_nodes /. float_of_int (warm_nodes + cold_nodes)
  in
  let iter_ratio =
    if w_iters = 0 then 0. else float_of_int c_iters /. float_of_int w_iters
  in
  let schedules_identical = w_scheds = c_scheds in
  let objectives_identical = w_objs = c_objs in
  let nodes_identical = w_nodes = c_nodes in
  Printf.printf "%d distinct shapes, node_limit=3000, strategy=two-stage\n"
    (List.length shapes);
  Printf.printf "warm: %.2f s, %d nodes, %d simplex iterations (%d warm-solved node LPs)\n"
    w_wall w_nodes w_iters (wcv "simplex.warm_solves");
  Printf.printf "cold: %.2f s, %d nodes, %d simplex iterations\n" c_wall c_nodes c_iters;
  Printf.printf "iteration ratio cold/warm: %.2fx (acceptance: >= 2x)\n" iter_ratio;
  Printf.printf "non-root node LPs warm-solved: %.1f%% (acceptance: >= 70%%)\n"
    (100. *. warm_rate);
  Printf.printf "schedules byte-identical warm vs cold: %b\n" schedules_identical;
  Printf.printf "objectives identical: %b\nnode counts identical: %b\n"
    objectives_identical nodes_identical;
  sweep_result :=
    Some
      (Printf.sprintf
         "{\"shapes\":%d,\"node_limit\":3000,\"schedules_identical\":%b,\
          \"objectives_identical\":%b,\"nodes_identical\":%b,\"iter_ratio\":%s,\
          \"warm_start_rate\":%s,\"warm\":{\"wall_s\":%s,\"telemetry\":%s},\
          \"cold\":{\"wall_s\":%s,\"telemetry\":%s}}"
         (List.length shapes) schedules_identical objectives_identical nodes_identical
         (json_float iter_ratio) (json_float warm_rate) (json_float w_wall)
         (snapshot_json w_snap) (json_float c_wall) (snapshot_json c_snap));
  Telemetry.Metrics.reset ();
  Telemetry.Sink.set Telemetry.Sink.Null;
  flush stdout

let () =
  let t0 = Unix.gettimeofday () in
  (* one optional argument selects a single section: exp | serve | sweep | micro *)
  (match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
   | Some "exp" -> run_experiments ()
   | Some "serve" -> serve_benchmarks ()
   | Some "sweep" -> warm_sweep ()
   | Some "soak" -> soak_benchmarks ()
   | Some "soak-cluster" ->
     let only_seed =
       if Array.length Sys.argv > 2 then Some (int_of_string Sys.argv.(2)) else None
     in
     soak_cluster_benchmarks ?only_seed ()
   | Some "micro" -> micro_benchmarks ()
   | Some "fuse" -> fuse_benchmarks ()
   | Some other ->
     Printf.eprintf
       "unknown section %S (expected exp, serve, sweep, soak, soak-cluster, fuse, \
        or micro)\n"
       other;
     exit 2
   | None ->
     print_endline "CoSA reproduction: full experiment harness";
     print_endline "==========================================";
     run_experiments ();
     serve_benchmarks ();
     soak_benchmarks ();
     soak_cluster_benchmarks ();
     warm_sweep ();
     fuse_benchmarks ();
     micro_benchmarks ());
  Printf.printf "\nTotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0);
  write_results "BENCH_results.json"
