(* Bench regression gate: compare a fresh BENCH_results.json against the
   committed BENCH_baseline.json.

     dune exec bench/check_regress.exe -- BENCH_results.json BENCH_baseline.json

   Two classes of check, matching what each number can promise:

   - Wall times (per experiment, and the warm/cold sweep walls) are
     machine- and load-dependent: drift beyond ±20% prints a WARNING but
     never fails the gate.

   - The warm-start sweep is node-bound, so its telemetry counters are
     deterministic: any counter drift against the baseline is a real
     behavioural change (different pivots, different tree) and FAILS the
     gate (exit 1), as does a sweep that lost warm/cold identity or stopped
     warm-solving nodes.

   Stdlib only (hand-rolled JSON reader for the subset bench/main.ml
   emits: objects, arrays, strings, numbers, booleans). *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (match peek () with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'u' ->
           (* bench output only escapes control characters; decode as-is *)
           let hex = String.sub s (!pos + 1) 4 in
           Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
           pos := !pos + 4
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin incr pos; Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; members ((k, v) :: acc)
          | '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin incr pos; Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; elements (v :: acc)
          | ']' -> incr pos; Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr pos
      done;
      if !pos = start then fail "unexpected character";
      Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  v

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_json (really_input_string ic (in_channel_length ic)))

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let path_opt j keys = List.fold_left (fun j k -> Option.bind j (member k)) (Some j) keys
let num_opt j keys = match path_opt j keys with Some (Num x) -> Some x | _ -> None
let bool_opt j keys = match path_opt j keys with Some (Bool b) -> Some b | _ -> None

let warnings = ref 0
let failures = ref 0

let warn fmt =
  Printf.ksprintf
    (fun s ->
      incr warnings;
      Printf.printf "WARNING: %s\n" s)
    fmt

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL: %s\n" s)
    fmt

let wall_tolerance = 0.20

let check_wall label fresh base =
  match (fresh, base) with
  | Some f, Some b when b > 0. ->
    let drift = (f -. b) /. b in
    if Float.abs drift > wall_tolerance then
      warn "%s wall %.2fs vs baseline %.2fs (%+.0f%%, tolerance ±%.0f%%)" label f b
        (100. *. drift) (100. *. wall_tolerance)
  | Some _, Some _ -> ()
  | _ -> warn "%s wall time missing from results or baseline" label

(* per-experiment wall times, matched by id *)
let check_experiments fresh base =
  let exps j =
    match member "experiments" j with
    | Some (Arr es) ->
      List.filter_map
        (fun e ->
          match (path_opt e [ "id" ], num_opt e [ "wall_s" ]) with
          | Some (Str id), Some w -> Some (id, w)
          | _ -> None)
        es
    | _ -> []
  in
  let base_exps = exps base in
  List.iter
    (fun (id, w) ->
      match List.assoc_opt id base_exps with
      | Some bw -> check_wall (Printf.sprintf "experiment %s" id) (Some w) (Some bw)
      | None -> warn "experiment %s missing from baseline" id)
    (exps fresh)

(* The node-bound warm sweep: identity booleans must hold in the fresh run,
   and every telemetry counter must match the baseline exactly. *)
let check_sweep fresh base =
  match (member "warm_sweep" fresh, member "warm_sweep" base) with
  | None, _ -> fail "warm_sweep section missing from fresh results"
  | _, None -> warn "warm_sweep section missing from baseline (gate skipped)"
  | Some f, Some b ->
    List.iter
      (fun key ->
        match bool_opt f [ key ] with
        | Some true -> ()
        | Some false -> fail "warm_sweep.%s is false (warm/cold runs diverged)" key
        | None -> fail "warm_sweep.%s missing" key)
      [ "schedules_identical"; "objectives_identical"; "nodes_identical" ];
    (match num_opt f [ "warm"; "telemetry"; "counters"; "simplex.warm_solves" ] with
     | Some w when w > 0. -> ()
     | Some _ -> fail "warm sweep performed no warm solves"
     | None -> fail "warm_sweep warm_solves counter missing");
    (* The incremental LU engine's reason to exist: the warm sweep must
       stay at or below 0.2 full refactorizations per simplex solve (the
       pre-engine code performed ~2 per solve). A missing refactorization
       counter means zero refactorizations, which trivially passes. *)
    (match num_opt f [ "warm"; "telemetry"; "counters"; "simplex.solves" ] with
     | Some solves when solves > 0. ->
       let refac =
         Option.value ~default:0.
           (num_opt f [ "warm"; "telemetry"; "counters"; "simplex.refactorizations" ])
       in
       let per_solve = refac /. solves in
       if per_solve > 0.2 then
         fail
           "warm sweep refactorizations per solve %.3f exceeds the 0.2 gate \
            (%.0f refactorizations / %.0f solves)"
           per_solve refac solves
     | Some _ | None -> fail "warm_sweep simplex.solves counter missing or zero");
    check_wall "warm_sweep(warm)" (num_opt f [ "warm"; "wall_s" ])
      (num_opt b [ "warm"; "wall_s" ]);
    check_wall "warm_sweep(cold)" (num_opt f [ "cold"; "wall_s" ])
      (num_opt b [ "cold"; "wall_s" ]);
    List.iter
      (fun side ->
        match
          (path_opt f [ side; "telemetry"; "counters" ],
           path_opt b [ side; "telemetry"; "counters" ])
        with
        | Some (Obj fc), Some (Obj bc) ->
          List.iter
            (fun (name, v) ->
              match (v, List.assoc_opt name bc) with
              | Num fv, Some (Num bv) ->
                if fv <> bv then
                  fail "warm_sweep %s counter %s drifted: %.0f vs baseline %.0f" side
                    name fv bv
              | _, None ->
                fail "warm_sweep %s counter %s absent from baseline" side name
              | _ -> fail "warm_sweep %s counter %s is not a number" side name)
            fc;
          List.iter
            (fun (name, _) ->
              if not (List.mem_assoc name fc) then
                fail "warm_sweep %s counter %s vanished from fresh results" side name)
            bc
        | _ -> fail "warm_sweep %s telemetry counters missing" side)
      [ "warm"; "cold" ]

(* The fusion sweep is exact-integer and node-bound, so its word counts are
   deterministic: any drift against the baseline is a real change to the
   planner or cost model and FAILS the gate. Gated networks must also keep
   clearing the >= gate_pct savings floor, and the DRAM-model replay must
   keep the fused stream strictly cheaper. *)
let check_fuse fresh base =
  match (member "fuse" fresh, member "fuse" base) with
  | None, None -> ()
  | None, Some _ -> fail "fuse section missing from fresh results"
  | Some _, None -> warn "fuse section missing from baseline (gate skipped)"
  | Some f, Some b ->
    let gate = match num_opt f [ "gate_pct" ] with Some g -> g | None -> 20. in
    let nets j =
      match member "networks" j with
      | Some (Arr ns) ->
        List.filter_map
          (fun e ->
            match path_opt e [ "name" ] with
            | Some (Str name) -> Some (name, e)
            | _ -> None)
          ns
      | _ -> []
    in
    let base_nets = nets b in
    List.iter
      (fun (name, e) ->
        (match num_opt e [ "fused" ] with
         | Some n when n >= 1. -> ()
         | _ -> fail "fuse %s: no chains fused" name);
        (if bool_opt e [ "gated" ] = Some true then
           match num_opt e [ "savings_pct" ] with
           | Some s when s >= gate -> ()
           | Some s -> fail "fuse %s: savings %.1f%% below the %.0f%% gate" name s gate
           | None -> fail "fuse %s: savings_pct missing" name);
        match List.assoc_opt name base_nets with
        | None -> warn "fuse network %s missing from baseline" name
        | Some be ->
          List.iter
            (fun key ->
              match (num_opt e [ key ], num_opt be [ key ]) with
              | Some fv, Some bv ->
                if fv <> bv then
                  fail "fuse %s %s drifted: %.0f vs baseline %.0f" name key fv bv
              | _ -> fail "fuse %s %s missing from results or baseline" name key)
            [ "chain_independent_words"; "chain_fused_words";
              "network_independent_words"; "network_fused_words" ])
      (nets f);
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name (nets f)) then
          fail "fuse network %s vanished from fresh results" name)
      base_nets;
    (match
       (num_opt f [ "dram_sim"; "fused_busy_cycles" ],
        num_opt f [ "dram_sim"; "independent_busy_cycles" ])
     with
     | Some fu, Some ind when fu < ind -> ()
     | Some _, Some _ ->
       fail "fuse DRAM model: fused stream not strictly cheaper than independent"
     | _ -> fail "fuse DRAM model busy-cycle counts missing")

let () =
  let results, baseline =
    match Sys.argv with
    | [| _; r; b |] -> (r, b)
    | _ ->
      prerr_endline "usage: check_regress RESULTS.json BASELINE.json";
      exit 2
  in
  let fresh =
    try load results
    with e ->
      Printf.eprintf "cannot read %s: %s\n" results (Printexc.to_string e);
      exit 2
  in
  let base =
    try load baseline
    with e ->
      Printf.eprintf "cannot read %s: %s\n" baseline (Printexc.to_string e);
      exit 2
  in
  check_experiments fresh base;
  check_sweep fresh base;
  check_fuse fresh base;
  Printf.printf "regression gate: %d failure(s), %d warning(s)\n" !failures !warnings;
  if !failures > 0 then exit 1
