(* Probe: does a warm solve WITHOUT a factor, run in a fresh domain (empty
   factor cache), return bit-identical floats to a cold solve in a fresh
   domain?  The determinism contract says yes. *)

let p =
  { Milp.Simplex.nrows = 3; ncols = 4;
    cols =
      [| ([| 0; 1 |], [| 1.3; 2.7 |]); ([| 0; 2 |], [| 3.1; 1.9 |]);
         ([| 1; 2 |], [| 1.7; 1.3 |]); ([| 0; 1; 2 |], [| 0.9; 1.1; 0.7 |]) |];
    cost = [| -1.1; -2.3; -1.7; -3.3 |];
    lb = [| 0.; 0.; 0.; 0. |]; ub = [| 5.; 5.; 5.; 5. |];
    rhs = [| 6.1; 5.3; 4.7 |] }

let bits x = Array.map Int64.bits_of_float x

let show x =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") x))

let () =
  (* parent solve in the main domain to obtain a canonical basis *)
  let parent =
    match Milp.Simplex.solve_r p with
    | Ok r -> r
    | Error _ -> failwith "parent solve failed"
  in
  let wb = Option.get parent.Milp.Simplex.basis in
  (* cold solve in a fresh domain: canonical bits with an empty cache *)
  let cold =
    Domain.join
      (Domain.spawn (fun () ->
           match Milp.Simplex.solve_r p with
           | Ok r -> (r.Milp.Simplex.x, r.Milp.Simplex.obj)
           | Error _ -> failwith "cold solve failed"))
  in
  (* warm solve (basis only, no factor) in another fresh domain *)
  let warm =
    Domain.join
      (Domain.spawn (fun () ->
           match Milp.Simplex.solve_r ~warm:wb p with
           | Ok r -> (r.Milp.Simplex.x, r.Milp.Simplex.obj, r.Milp.Simplex.warm)
           | Error _ -> failwith "warm solve failed"))
  in
  let cx, cobj = cold in
  let wx, wobj, was_warm = warm in
  Printf.printf "warm path taken: %b\n" was_warm;
  Printf.printf "cold x: %s  obj %h\n" (show cx) cobj;
  Printf.printf "warm x: %s  obj %h\n" (show wx) wobj;
  if bits cx = bits wx && Int64.bits_of_float cobj = Int64.bits_of_float wobj
  then print_endline "IDENTICAL"
  else print_endline "DIVERGED"
